"""Property tests pinning live-vs-rebuild equivalence.

The contract of :mod:`repro.analysis.live` is byte-identical equality with a
fresh rebuild: at *every* snapshot, every table row (including tie order) and
every similarity ranking produced by the incrementally maintained
:class:`LiveAnalysis` must equal what a fresh
:class:`~repro.core.pipeline.AnalysisPipeline` /
:class:`~repro.analysis.similarity.SimilaritySearch` computes over the same
record set.  These tests stream synthetic record sequences (delivered out of
canonical order, with open-group overlays, across the index threshold) and
full campaigns (seeds x loss rates, batch and streaming ingest) and compare
at each step.
"""

from __future__ import annotations

import pytest

from repro.analysis.live import LiveAnalysis
from repro.analysis.similarity import SimilaritySearch
from repro.analysis.simindex import SimilarityIndex
from repro.core import AnalysisPipeline
from repro.db.store import ProcessRecord
from repro.hashing.ssdeep import FuzzyHasher, fuzzy_hash_text
from repro.util.errors import AnalysisError, CollectionError
from repro.util.rng import SeededRNG
from repro.workload import CampaignConfig, DeploymentCampaign
from repro.workload.profiles import DEFAULT_PROFILES


def _canonical(records: list[ProcessRecord]) -> list[ProcessRecord]:
    """Snapshot order: the canonical process-key sort every rebuild sees."""
    return sorted(records, key=lambda r: (r.jobid, r.stepid, r.pid, r.hash,
                                          r.host, r.time))


def _assert_views_equal(live: LiveAnalysis, records: list[ProcessRecord],
                        user_names: dict[int, str], *,
                        index_threshold: int | None = None) -> None:
    """Every live view equals a fresh rebuild over ``records`` -- byte for byte."""
    reference = _canonical(records)
    pipeline = AnalysisPipeline(reference, user_names)
    assert live.table2_user_activity() == pipeline.table2_user_activity()
    assert live.table2_totals() == pipeline.table2_totals()
    assert live.table3_system_executables() == pipeline.table3_system_executables()
    assert live.table3_system_executables(top=None) == \
        pipeline.table3_system_executables(top=None)
    assert live.table8_python_interpreters() == pipeline.table8_python_interpreters()

    kwargs = {} if index_threshold is None else {"index_threshold": index_threshold}
    fresh = SimilaritySearch(reference, **kwargs)
    assert [(i.key, i.label, i.process_count) for i in live.instances] == \
        [(i.key, i.label, i.process_count) for i in fresh.instances]
    brute = SimilaritySearch(reference, use_index=False)
    try:
        expected = fresh.identify_unknown(top=10)
    except AnalysisError:
        expected = None
        with pytest.raises(AnalysisError):
            live.identify_unknown(top=10)
    if expected is not None:
        assert live.identify_unknown(top=10) == expected
        assert brute.identify_unknown(top=10) == expected  # and both == brute force
    for baseline in fresh.instances[:3]:
        assert live.query(baseline) == fresh.query(baseline)


# --------------------------------------------------------------------------- #
# synthetic record streams (unit-level, fine-grained control)
# --------------------------------------------------------------------------- #
def _record(pid: int, *, category: str, executable: str, jobid: str,
            uid: int = 1000, content: str = "", environment: str = "env",
            script: str = "") -> ProcessRecord:
    hashes = {}
    if category == "user":
        hashes = dict(
            modules_h=fuzzy_hash_text(environment + " modules " * 30),
            compilers_h=fuzzy_hash_text(environment + " compilers " * 30),
            objects_h=fuzzy_hash_text(environment + " objects " * 30),
            file_h=fuzzy_hash_text(content + " file"),
            strings_h=fuzzy_hash_text(content + " strings"),
            symbols_h=fuzzy_hash_text(content + " symbols"),
        )
    elif category == "system":
        hashes = dict(objects_h=fuzzy_hash_text(environment + " objects " * 30))
    elif category == "python":
        hashes = dict(script_h=fuzzy_hash_text(script) if script else "")
    return ProcessRecord(
        jobid=jobid, stepid="0", pid=pid, hash=f"{pid:032x}", host=f"n{pid % 3}",
        time=100 + pid, uid=uid, executable=executable, category=category,
        **hashes)


def _synthetic_stream(seed: int = 5, count: int = 48) -> list[ProcessRecord]:
    """A mixed-category stream with an UNKNOWN family, unique process keys."""
    rng = SeededRNG(seed)
    words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    records = []
    for pid in range(count):
        jobid = str(1 + pid // 6)
        uid = 1000 + pid % 5
        kind = rng.choice(["user", "user", "system", "python"])
        if kind == "system":
            records.append(_record(pid, category="system", jobid=jobid, uid=uid,
                                   executable=f"/usr/bin/tool{pid % 4}",
                                   environment=f"env-{pid % 2}"))
        elif kind == "python":
            records.append(_record(pid, category="python", jobid=jobid, uid=uid,
                                   executable=f"/usr/bin/python3.1{pid % 2}",
                                   script=f"/u/run{pid % 3}.py"))
        else:
            family = pid % 3
            base = [rng.choice(words) for _ in range(120)]
            # family 0 runs under a nondescript name -> UNKNOWN baseline;
            # the others carry label-rule names so candidates are labelled
            name = ("a.out", "icon", "lmp")[family]
            records.append(_record(pid, category="user", jobid=jobid, uid=uid,
                                   executable=f"/proj/u/f{family}/{name}",
                                   content=" ".join(base),
                                   environment=f"env-{family}"))
    # deliver out of canonical key order to stress first-occurrence tracking
    return rng.shuffle(records)


class TestSyntheticStreamEquivalence:
    def test_committed_deltas_match_rebuild_at_every_step(self):
        stream = _synthetic_stream()
        live = LiveAnalysis({1000: "user_a", 1001: "user_b"})
        committed: list[ProcessRecord] = []
        for start in range(0, len(stream), 5):
            chunk = stream[start:start + 5]
            live.commit(chunk)
            committed.extend(chunk)
            _assert_views_equal(live, committed, live.user_names)

    def test_open_group_overlay_matches_rebuild(self):
        stream = _synthetic_stream(seed=9)
        live = LiveAnalysis({})
        committed = stream[:30]
        live.commit(committed)
        for cut in (1, 4, 9):
            open_records = stream[30:30 + cut]
            live.refresh_open(open_records)
            _assert_views_equal(live, committed + open_records, {})
        # an open group closing moves its key from overlay to committed
        live.commit(stream[30:34])
        live.refresh_open(stream[34:36])
        _assert_views_equal(live, stream[:36], {})

    def test_resurrected_open_keys_are_dropped(self):
        stream = _synthetic_stream(seed=3)
        live = LiveAnalysis({})
        live.commit(stream[:20])
        before = (live.table2_user_activity(), live.table3_system_executables())
        # a very late message resurrects an already-finalized key: the peek
        # carries it, but the live view must keep the committed record
        live.refresh_open([stream[4]])
        assert (live.table2_user_activity(), live.table3_system_executables()) == before
        _assert_views_equal(live, stream[:20], {})

    def test_index_growth_across_threshold_stays_equivalent(self):
        """add() growth crossing index_threshold: live answers stay identical
        (brute force below the threshold, incrementally grown index above)."""
        stream = _synthetic_stream(seed=11, count=60)
        threshold = 6
        live = LiveAnalysis({}, index_threshold=threshold)
        committed: list[ProcessRecord] = []
        crossed = False
        for start in range(0, len(stream), 4):
            chunk = stream[start:start + 4]
            live.commit(chunk)
            committed.extend(chunk)
            _assert_views_equal(live, committed, {}, index_threshold=threshold)
            if live.index_stats() is not None:
                crossed = True
        assert crossed, "the stream never crossed the index threshold"

    def test_commit_rejects_duplicate_keys_without_corrupting_state(self):
        stream = _synthetic_stream()
        live = LiveAnalysis({})
        live.commit(stream[:5])
        before = (live.table2_user_activity(), live.table3_system_executables(),
                  live.statistics())
        # duplicate against committed state, buried mid-batch ...
        with pytest.raises(AnalysisError):
            live.commit([stream[5], stream[2], stream[6]])
        # ... and duplicate within one batch: both reject the WHOLE batch
        with pytest.raises(AnalysisError):
            live.commit([stream[7], stream[7]])
        assert (live.table2_user_activity(), live.table3_system_executables(),
                live.statistics()) == before
        _assert_views_equal(live, stream[:5], {})
        # the rejected records are still committable afterwards
        live.commit(stream[5:8])
        _assert_views_equal(live, stream[:8], {})

    def test_observe_diffs_by_key_and_rejects_shrinking_streams(self):
        stream = _synthetic_stream()
        live = LiveAnalysis({})
        assert live.observe(stream[:10]) == 10
        assert live.observe(stream[:16]) == 6  # only the new keys commit
        _assert_views_equal(live, stream[:16], {})
        with pytest.raises(AnalysisError):
            live.observe(stream[2:10])  # previously committed records missing

    def test_warm_hasher_is_shared_across_snapshots(self):
        stream = [record for record in _synthetic_stream() if record.category == "user"]
        hasher = FuzzyHasher()
        live = LiveAnalysis({}, hasher=hasher)
        live.commit(stream)
        live.identify_unknown(top=10)
        after_first = hasher.compare_cache_info()
        live.identify_unknown(top=10)
        after_second = hasher.compare_cache_info()
        # the second snapshot's alignments are all compare-LRU hits
        assert after_second.misses == after_first.misses
        assert after_second.hits > after_first.hits


class TestIncrementalIndexAndSearchGrowth:
    def test_similarity_index_add_equals_batch_build(self):
        stream = [r for r in _synthetic_stream(seed=7) if r.category == "user"]
        rows = [SimilaritySearch([record]).instances[0].hashes for record in stream]
        batch = SimilarityIndex(rows, columns=("FI_H", "MO_H"))
        grown = SimilarityIndex([], columns=("FI_H", "MO_H"))
        for row in rows:
            grown.add(row)
        assert len(grown) == len(batch)
        for row in rows:
            for column in ("FI_H", "MO_H"):
                digest = row[column]
                assert grown.candidates(digest, column) == \
                    batch.candidates(digest, column)

    def test_add_records_refreshes_a_built_index(self):
        """Regression test for the staleness bug: the n-gram index used to be
        cached forever, so records added after the first indexed query were
        invisible to every later query."""
        stream = [r for r in _synthetic_stream(seed=13, count=60)
                  if r.category == "user"]
        half = len(stream) // 2
        search = SimilaritySearch(stream[:half], index_threshold=4)
        baseline = search.unknown_instances()[0]
        assert search.indexed
        search.query(baseline)  # builds and uses the index
        search.add_records(stream[half:])
        fresh = SimilaritySearch(stream, index_threshold=4)
        assert [(i.key, i.process_count) for i in search.instances] == \
            [(i.key, i.process_count) for i in fresh.instances]
        assert search.query(baseline) == fresh.query(baseline)
        assert search.identify_unknown(top=10) == fresh.identify_unknown(top=10)
        assert search.identify_unknown(top=10) == \
            SimilaritySearch(stream, use_index=False).identify_unknown(top=10)


# --------------------------------------------------------------------------- #
# full campaigns (integration-level)
# --------------------------------------------------------------------------- #
class TestCampaignLiveEquivalence:
    PROFILES = DEFAULT_PROFILES[:4]

    def _check_against_snapshot(self, live, campaign, failures):
        live_t2 = live.table2_user_activity()
        live_t3 = live.table3_system_executables()
        live_t8 = live.table8_python_interpreters()
        live_instances = [(i.key, i.label, i.process_count) for i in live.instances]
        try:
            live_t7 = live.identify_unknown(top=10)
        except AnalysisError:
            live_t7 = None
        records = campaign.snapshot()
        pipeline = AnalysisPipeline(records, live.user_names)
        fresh = SimilaritySearch(records)
        try:
            fresh_t7 = fresh.identify_unknown(top=10)
        except AnalysisError:
            fresh_t7 = None
        if live_t2 != pipeline.table2_user_activity():
            failures.append("table2")
        if live_t3 != pipeline.table3_system_executables():
            failures.append("table3")
        if live_t8 != pipeline.table8_python_interpreters():
            failures.append("table8")
        if live_instances != [(i.key, i.label, i.process_count)
                              for i in fresh.instances]:
            failures.append("instances")
        if live_t7 != fresh_t7:
            failures.append("table7")

    @pytest.mark.parametrize("seed,loss_rate,shards,workers", [
        (17, 0.0, 1, "thread"),
        (17, 0.01, 2, "thread"),
        (23, 0.0002, 1, "thread"),
        # process-parallel shards: live views pull the same delta stream,
        # now fed by merge-at-snapshot from OS worker processes
        (17, 0.01, 2, "process"),
    ])
    def test_streaming_campaign_live_matches_rebuild_at_every_job(
            self, seed, loss_rate, shards, workers):
        config = CampaignConfig(scale=0.0, seed=seed, loss_rate=loss_rate,
                                ingest_mode="streaming", ingest_shards=shards,
                                ingest_workers=workers, keep_raw_messages=False)
        campaign = DeploymentCampaign(config=config, profiles=self.PROFILES)
        live = campaign.live_analysis()
        failures: list[str] = []
        checks = [0]

        def on_job(jobs_run: int) -> None:
            self._check_against_snapshot(live, campaign, failures)
            checks[0] += 1

        campaign.on_job = on_job
        result = campaign.run()
        assert checks[0] == result.jobs_run > 0
        assert failures == []
        assert live.statistics()["records_committed"] > 0

    @pytest.mark.parametrize("seed,loss_rate", [(17, 0.01), (5, 0.0)])
    def test_batch_campaign_observe_matches_rebuild_at_every_job(
            self, seed, loss_rate):
        config = CampaignConfig(scale=0.0, seed=seed, loss_rate=loss_rate)
        campaign = DeploymentCampaign(config=config, profiles=self.PROFILES)
        campaign.prepare()
        user_names = {user.uid: user.username
                      for user in campaign.cluster.users.all()}
        live = LiveAnalysis(user_names)
        failures: list[str] = []
        checks = [0]

        def on_job(jobs_run: int) -> None:
            records = campaign.snapshot()
            live.observe(records)
            try:
                _assert_views_equal(live, records, user_names)
            except AssertionError as error:
                failures.append(str(error)[:200])
            checks[0] += 1

        campaign.on_job = on_job
        result = campaign.run()
        assert checks[0] == result.jobs_run > 0
        assert failures == []

    def test_live_analysis_requires_streaming_campaign(self):
        campaign = DeploymentCampaign(
            CampaignConfig(scale=0.0), profiles=self.PROFILES)
        with pytest.raises(CollectionError):
            campaign.live_analysis()
        with pytest.raises(CollectionError):
            campaign.snapshot_delta()
