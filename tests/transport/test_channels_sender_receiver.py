"""Tests for channels, the sender and the receiver (including real sockets)."""

import pytest

from repro.collector.records import InfoType, Layer
from repro.db.store import MessageStore
from repro.transport.channel import InMemoryChannel, LossyChannel, SocketChannel
from repro.transport.messages import UDPMessage
from repro.transport.receiver import MessageReceiver
from repro.transport.sender import UDPSender
from repro.util.errors import TransportError
from repro.util.rng import SeededRNG


def _message(content: str, info_type: InfoType = InfoType.OBJECTS) -> UDPMessage:
    return UDPMessage(jobid="1", stepid="0", pid=99, path_hash="0" * 32, host="n1",
                      time=100, layer=Layer.SELF, info_type=info_type, content=content)


class TestInMemoryChannel:
    def test_delivers_to_all_subscribers(self):
        channel = InMemoryChannel()
        seen: list[bytes] = []
        channel.subscribe(seen.append)
        channel.subscribe(seen.append)
        assert channel.send(b"datagram")
        assert seen == [b"datagram", b"datagram"]
        assert channel.datagrams_sent == 1
        assert channel.bytes_sent == len(b"datagram")


class TestLossyChannel:
    def test_zero_loss_delivers_everything(self):
        channel = LossyChannel(loss_rate=0.0)
        seen: list[bytes] = []
        channel.subscribe(seen.append)
        for index in range(100):
            channel.send(bytes([index]))
        assert len(seen) == 100
        assert channel.observed_loss_rate == 0.0

    def test_full_loss_drops_everything(self):
        channel = LossyChannel(loss_rate=1.0)
        seen: list[bytes] = []
        channel.subscribe(seen.append)
        for index in range(50):
            assert not channel.send(bytes([index]))
        assert seen == []
        assert channel.datagrams_dropped == 50

    def test_loss_rate_approximate(self):
        channel = LossyChannel(loss_rate=0.2, rng=SeededRNG(3))
        for _ in range(5000):
            channel.send(b"x")
        assert 0.15 < channel.observed_loss_rate < 0.25

    def test_deterministic_given_seed(self):
        a = LossyChannel(loss_rate=0.3, rng=SeededRNG(11))
        b = LossyChannel(loss_rate=0.3, rng=SeededRNG(11))
        pattern_a = [a.send(b"x") for _ in range(200)]
        pattern_b = [b.send(b"x") for _ in range(200)]
        assert pattern_a == pattern_b

    def test_invalid_loss_rate(self):
        with pytest.raises(TransportError):
            LossyChannel(loss_rate=1.5)


class TestUDPSender:
    def test_single_datagram_for_short_message(self):
        channel = InMemoryChannel()
        sender = UDPSender(channel)
        assert sender.send(_message("short")) == 1
        assert sender.messages_sent == 1

    def test_long_message_chunked(self):
        channel = InMemoryChannel()
        received: list[bytes] = []
        channel.subscribe(received.append)
        sender = UDPSender(channel, max_datagram_size=256)
        long_content = "\n".join(f"/opt/cray/pe/lib64/library_number_{i}.so" for i in range(100))
        emitted = sender.send(_message(long_content))
        assert emitted == len(received) > 1
        decoded = [UDPMessage.decode(datagram) for datagram in received]
        assert all(message.chunk_total == len(received) for message in decoded)
        assert "".join(message.content for message in decoded) == long_content
        assert all(len(datagram) <= 256 for datagram in received)

    def test_send_errors_are_swallowed(self):
        class BrokenChannel:
            def send(self, datagram: bytes) -> bool:
                raise OSError("network is down")

            def subscribe(self, callback) -> None:  # pragma: no cover - unused
                pass

        sender = UDPSender(BrokenChannel())
        assert sender.send(_message("x")) == 0
        assert sender.send_errors == 1

    def test_send_all(self):
        sender = UDPSender(InMemoryChannel())
        assert sender.send_all([_message("a"), _message("b")]) == 2


class TestMessageReceiver:
    def test_end_to_end_into_store(self):
        store = MessageStore()
        channel = InMemoryChannel()
        receiver = MessageReceiver(store)
        receiver.attach(channel)
        sender = UDPSender(channel)
        sender.send(_message("payload"))
        receiver.flush()
        assert store.message_count() == 1
        assert receiver.messages_received == 1

    def test_malformed_datagrams_counted_not_stored(self):
        store = MessageStore()
        receiver = MessageReceiver(store)
        receiver.handle_datagram(b"garbage")
        receiver.flush()
        assert receiver.decode_errors == 1
        assert store.message_count() == 0

    def test_batched_insertion(self):
        store = MessageStore()
        receiver = MessageReceiver(store, batch_size=10)
        for index in range(25):
            receiver.handle_datagram(_message(f"m{index}").encode())
        # Two full batches auto-flushed, 5 still buffered.
        assert store.message_count() == 20
        receiver.flush()
        assert store.message_count() == 25


class _RecordingSink:
    """Minimal MessageSink: records batches and epoch ticks."""

    def __init__(self):
        self.batches: list[list] = []
        self.epochs = 0

    def feed_many(self, messages):
        self.batches.append(list(messages))

    def advance_epoch(self):
        self.epochs += 1
        return 0


class TestReceiverSink:
    def test_sink_receives_batches_and_epochs(self):
        store = MessageStore()
        sink = _RecordingSink()
        receiver = MessageReceiver(store, sink=sink, batch_size=10)
        for index in range(25):
            receiver.handle_datagram(_message(f"m{index}").encode())
        assert [len(batch) for batch in sink.batches] == [10, 10]
        assert sink.epochs == 2

    def test_partial_batch_flushed_to_sink(self):
        store = MessageStore()
        sink = _RecordingSink()
        receiver = MessageReceiver(store, sink=sink, batch_size=10)
        for index in range(3):
            receiver.handle_datagram(_message(f"m{index}").encode())
        assert receiver.flush() == 3
        assert [len(batch) for batch in sink.batches] == [3]
        assert sink.epochs == 1
        # An empty flush delivers nothing and does not tick the epoch clock.
        assert receiver.flush() == 0
        assert sink.epochs == 1

    def test_decode_errors_counted_not_fed_to_sink(self):
        store = MessageStore()
        sink = _RecordingSink()
        receiver = MessageReceiver(store, sink=sink, persist_raw=False, batch_size=10)
        receiver.handle_datagram(b"garbage")
        receiver.handle_datagram(_message("good").encode())
        receiver.handle_datagram(b"\xff\xfe not utf-8 \x80")
        receiver.flush()
        assert receiver.decode_errors == 2
        assert receiver.messages_received == 1
        assert sum(len(batch) for batch in sink.batches) == 1

    def test_persist_raw_off_keeps_messages_table_empty(self):
        store = MessageStore()
        sink = _RecordingSink()
        receiver = MessageReceiver(store, sink=sink, persist_raw=False, batch_size=2)
        for index in range(6):
            receiver.handle_datagram(_message(f"m{index}").encode())
        receiver.flush()
        assert store.message_count() == 0
        assert sum(len(batch) for batch in sink.batches) == 6

    def test_persist_raw_and_sink_together(self):
        store = MessageStore()
        sink = _RecordingSink()
        receiver = MessageReceiver(store, sink=sink, persist_raw=True, batch_size=4)
        for index in range(4):
            receiver.handle_datagram(_message(f"m{index}").encode())
        assert store.message_count() == 4
        assert sum(len(batch) for batch in sink.batches) == 4


class TestSocketChannel:
    def test_real_udp_loopback_roundtrip(self):
        store = MessageStore()
        with SocketChannel() as channel:
            receiver = MessageReceiver(store)
            receiver.attach(channel)
            sender = UDPSender(channel)
            for index in range(20):
                sender.send(_message(f"socket message {index}"))
            delivered = channel.drain()
            receiver.flush()
        assert delivered == 20
        assert store.message_count() == 20

    def test_address_is_loopback(self):
        with SocketChannel() as channel:
            host, port = channel.address
            assert host == "127.0.0.1"
            assert port > 0
