"""Tests for the UDP message format and chunking."""

import pytest

from repro.collector.records import InfoType, Layer, format_keyvalues, parse_keyvalues
from repro.transport.chunking import reassemble_chunks, split_content
from repro.transport.messages import MAX_DATAGRAM_SIZE, UDPMessage
from repro.util.errors import TransportError


def _message(content: str = "hello", info_type: InfoType = InfoType.PROCINFO) -> UDPMessage:
    return UDPMessage(jobid="9100001", stepid="0", pid=1234, path_hash="ab" * 16,
                      host="nid000001", time=1_733_000_000, layer=Layer.SELF,
                      info_type=info_type, content=content)


class TestKeyValueFormat:
    def test_roundtrip(self):
        pairs = {"pid": 12, "exe": "/usr/bin/bash", "category": "system"}
        assert parse_keyvalues(format_keyvalues(pairs)) == {
            "pid": "12", "exe": "/usr/bin/bash", "category": "system"}

    def test_empty_content(self):
        assert parse_keyvalues("") == {}

    def test_value_with_equals_sign(self):
        parsed = parse_keyvalues(format_keyvalues({"flag": "a=b"}))
        assert parsed["flag"] == "a=b"


class TestUDPMessage:
    def test_encode_decode_roundtrip(self):
        message = _message("the content")
        assert UDPMessage.decode(message.encode()) == message

    def test_all_header_fields_preserved(self):
        message = _message()
        decoded = UDPMessage.decode(message.encode())
        assert decoded.jobid == "9100001"
        assert decoded.stepid == "0"
        assert decoded.pid == 1234
        assert decoded.path_hash == "ab" * 16
        assert decoded.host == "nid000001"
        assert decoded.time == 1_733_000_000
        assert decoded.layer is Layer.SELF
        assert decoded.info_type is InfoType.PROCINFO

    def test_chunk_fields(self):
        chunked = _message().with_chunk("part", 2, 5)
        decoded = UDPMessage.decode(chunked.encode())
        assert decoded.chunk_index == 2 and decoded.chunk_total == 5
        assert decoded.content == "part"

    def test_rejects_separator_in_content(self):
        with pytest.raises(TransportError):
            _message("bad\x1fcontent").encode()

    def test_decode_rejects_garbage(self):
        with pytest.raises(TransportError):
            UDPMessage.decode(b"not a siren datagram")
        with pytest.raises(TransportError):
            UDPMessage.decode(b"\xff\xfe")

    def test_decode_rejects_wrong_field_count(self):
        with pytest.raises(TransportError):
            UDPMessage.decode("SIREN1\x1fonly\x1fthree".encode())

    def test_process_key(self):
        message = _message()
        assert message.process_key == ("9100001", "0", 1234, "ab" * 16, "nid000001")

    def test_header_overhead_reasonable(self):
        assert 0 < _message().header_overhead() < 200

    def test_unicode_content(self):
        message = _message("durée=42µs")
        assert UDPMessage.decode(message.encode()).content == "durée=42µs"


class TestChunking:
    def test_short_content_single_chunk(self):
        assert split_content("short", 100) == ["short"]

    def test_empty_content(self):
        assert split_content("", 100) == [""]

    def test_long_content_split_and_reassembled(self):
        content = "x" * 5000
        chunks = split_content(content, 1000)
        assert len(chunks) == 5
        assert all(len(chunk.encode()) <= 1000 for chunk in chunks)
        result = reassemble_chunks(dict(enumerate(chunks)), len(chunks))
        assert result.content == content
        assert result.complete

    def test_multibyte_characters_not_split(self):
        content = "é" * 300
        chunks = split_content(content, 101)
        assert "".join(chunks) == content

    def test_missing_chunk_detected(self):
        chunks = split_content("abcdefghij" * 100, 128)
        received = dict(enumerate(chunks))
        del received[1]
        result = reassemble_chunks(received, len(chunks))
        assert not result.complete
        assert result.received_chunks == len(chunks) - 1
        assert len(result.content) < 1000

    def test_unreasonable_chunk_size_rejected(self):
        with pytest.raises(TransportError):
            split_content("abc", 2)

    def test_reassemble_validates_total(self):
        with pytest.raises(TransportError):
            reassemble_chunks({0: "x"}, 0)

    def test_out_of_range_chunks_ignored(self):
        result = reassemble_chunks({0: "a", 7: "zzz"}, 2)
        assert result.content == "a"
        assert result.received_chunks == 1

    def test_max_datagram_constant_sane(self):
        assert 512 <= MAX_DATAGRAM_SIZE <= 65507
