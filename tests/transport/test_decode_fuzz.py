"""Property/fuzz tests: ``UDPMessage.decode`` is total over hostile bytes.

The receiver's whole robustness story rests on one contract: for *any* input
bytes, decode either returns a message or raises
:class:`~repro.util.errors.TransportError` -- never ``ValueError``,
``UnicodeDecodeError``, ``IndexError`` or anything else that would escape the
receiver's handler and kill the ingest loop.  Hypothesis drives arbitrary,
truncated, bit-flipped and structurally mutated datagrams at it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport.messages import InfoType, Layer, UDPMessage
from repro.util.errors import TransportError

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           exclude_characters="\x1f"),
    max_size=30)

messages = st.builds(
    UDPMessage,
    jobid=printable, stepid=printable,
    pid=st.integers(min_value=0, max_value=2**31 - 1),
    path_hash=printable, host=printable,
    time=st.integers(min_value=0, max_value=2**40),
    layer=st.sampled_from(list(Layer)),
    info_type=st.sampled_from(list(InfoType)),
    # the wire format reserves \x1f as the field separator; encode refuses it.
    # Surrogate codepoints are excluded because content must be UTF-8
    # encodable to reach the wire at all.
    content=st.text(alphabet=st.characters(exclude_characters="\x1f",
                                           exclude_categories=("Cs",)),
                    max_size=200),
    chunk_index=st.integers(min_value=0, max_value=63),
    chunk_total=st.integers(min_value=1, max_value=64),
)


def _decode_or_transport_error(datagram: bytes) -> UDPMessage | None:
    """The contract under test, as a helper: anything else propagates."""
    try:
        return UDPMessage.decode(datagram)
    except TransportError:
        return None


class TestDecodeTotality:
    @given(st.binary(max_size=2048))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_bytes_never_raise_anything_else(self, blob):
        _decode_or_transport_error(blob)

    @given(messages)
    @settings(max_examples=150, deadline=None)
    def test_round_trip(self, message):
        assert UDPMessage.decode(message.encode()) == message

    @given(messages, st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_every_truncation_decodes_or_raises_transport_error(self, message, cut):
        encoded = message.encode()
        truncated = encoded[:cut % (len(encoded) + 1)]
        decoded = _decode_or_transport_error(truncated)
        if len(truncated) < len(encoded):
            # A proper prefix can only succeed by decoding a shorter content
            # (the final field); every structural field is checked.
            assert decoded is None or decoded.content != message.content \
                or truncated == encoded

    @given(messages, st.integers(min_value=0), st.integers(min_value=0, max_value=7))
    @settings(max_examples=300, deadline=None)
    def test_bit_flips_decode_or_raise_transport_error(self, message, position, bit):
        encoded = bytearray(message.encode())
        encoded[position % len(encoded)] ^= 1 << bit
        _decode_or_transport_error(bytes(encoded))

    @given(messages, st.integers(min_value=0), st.booleans())
    @settings(max_examples=200, deadline=None)
    def test_field_count_mutations_raise_transport_error(self, message, where, add):
        encoded = message.encode()
        if add:
            # Splice in an extra separator: the field count grows, and the
            # spliced datagram must not silently decode to the original.
            cut = where % (len(encoded) + 1)
            mutated = encoded[:cut] + b"\x1f" + encoded[cut:]
            decoded = _decode_or_transport_error(mutated)
            assert decoded != message
        else:
            # Drop one separator: too few fields, never a silent pass-through.
            separators = [index for index, byte in enumerate(encoded)
                          if byte == 0x1F]
            victim = separators[where % len(separators)]
            mutated = encoded[:victim] + encoded[victim + 1:]
            decoded = _decode_or_transport_error(mutated)
            assert decoded != message

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_non_utf8_raises_transport_error(self, suffix):
        datagram = b"SIREN1\x1f" + b"\xff\xfe" + suffix
        assert _decode_or_transport_error(datagram) is None
