"""The sender's fast encode path must be byte-identical to the reference.

``UDPSender(fast_encode=True)`` encodes the header prefix once per message
and reuses it across chunks; ``fast_encode=False`` keeps the historical
per-chunk dataclass-copy path.  Every datagram on the wire must be
indistinguishable between the two, or stored raw messages (and their
consolidation) would depend on a performance knob.
"""

import pytest

from repro.collector.records import InfoType, Layer
from repro.transport.channel import InMemoryChannel
from repro.transport.messages import UDPMessage
from repro.transport.sender import UDPSender


def _message(content: str) -> UDPMessage:
    return UDPMessage(jobid="9100007", stepid="2", pid=4_194_000,
                      path_hash="cd" * 16, host="nid000042",
                      time=1_733_123_456, layer=Layer.SCRIPT,
                      info_type=InfoType.FILE_H, content=content)


def _wire_bytes(message: UDPMessage, *, fast: bool,
                max_datagram_size: int = 1400) -> list[bytes]:
    channel = InMemoryChannel()
    captured: list[bytes] = []
    channel.subscribe(captured.append)
    UDPSender(channel, max_datagram_size=max_datagram_size,
              fast_encode=fast).send(message)
    return captured


CASES = {
    "empty": "",
    "single-chunk": "short content",
    "unicode": "naïve → ∑ mixed ユニコード payload " * 20,
    "multi-chunk": "x" * 5000,
    "two-digit-chunk-indices": "chunky " * 4000,
}


@pytest.mark.parametrize("content", CASES.values(), ids=CASES.keys())
def test_fast_path_datagrams_byte_identical(content):
    message = _message(content)
    fast = _wire_bytes(message, fast=True)
    reference = _wire_bytes(message, fast=False)
    assert fast == reference
    assert len(fast) >= 1


def test_decode_roundtrip_of_fast_datagrams():
    message = _message("payload " * 3000)
    datagrams = _wire_bytes(message, fast=True)
    assert len(datagrams) > 10  # chunk indices reach two digits
    decoded = [UDPMessage.decode(datagram) for datagram in datagrams]
    assert [d.chunk_index for d in decoded] == list(range(len(datagrams)))
    assert all(d.chunk_total == len(datagrams) for d in decoded)
    assert "".join(d.content for d in decoded) == message.content


def test_header_overhead_matches_reference_encoding():
    message = _message("abc").with_chunk("abc", 0, 1)
    overhead = message.header_overhead()
    encoded = len(message.encode())
    assert overhead == encoded - len("abc".encode("utf-8"))
