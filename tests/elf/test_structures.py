"""Tests for the ELF binary structures."""

import pytest

from repro.elf.constants import (
    EHDR_SIZE,
    ET_DYN,
    ET_EXEC,
    SHDR_SIZE,
    STB_GLOBAL,
    STT_FUNC,
    SYM_SIZE,
    st_bind,
    st_info,
    st_type,
)
from repro.elf.structures import (
    DynamicEntry,
    ELFHeader,
    ProgramHeader,
    SectionHeader,
    StringTable,
    Symbol,
)
from repro.util.errors import ELFError


class TestSymbolInfoPacking:
    def test_roundtrip(self):
        info = st_info(STB_GLOBAL, STT_FUNC)
        assert st_bind(info) == STB_GLOBAL
        assert st_type(info) == STT_FUNC


class TestELFHeader:
    def test_pack_size(self):
        assert len(ELFHeader().pack()) == EHDR_SIZE

    def test_roundtrip(self):
        header = ELFHeader(e_type=ET_DYN, e_shoff=512, e_shnum=7, e_shstrndx=6)
        assert ELFHeader.unpack(header.pack()) == header

    def test_rejects_truncated(self):
        with pytest.raises(ELFError):
            ELFHeader.unpack(b"\x7fELF")

    def test_rejects_bad_magic(self):
        data = bytearray(ELFHeader().pack())
        data[0] = 0x00
        with pytest.raises(ELFError):
            ELFHeader.unpack(bytes(data))

    def test_rejects_32_bit(self):
        data = bytearray(ELFHeader().pack())
        data[4] = 1  # ELFCLASS32
        with pytest.raises(ELFError):
            ELFHeader.unpack(bytes(data))

    def test_default_is_executable(self):
        assert ELFHeader().e_type == ET_EXEC


class TestSectionHeader:
    def test_pack_size(self):
        assert len(SectionHeader().pack()) == SHDR_SIZE

    def test_roundtrip_preserves_fields(self):
        original = SectionHeader(sh_name=5, sh_type=1, sh_flags=6, sh_addr=0x400000,
                                 sh_offset=128, sh_size=64, sh_link=2, sh_info=1,
                                 sh_addralign=16, sh_entsize=24)
        parsed = SectionHeader.unpack(original.pack())
        assert parsed.sh_offset == 128 and parsed.sh_size == 64 and parsed.sh_entsize == 24

    def test_name_not_compared(self):
        assert SectionHeader(name="a") == SectionHeader(name="b")


class TestSymbol:
    def test_pack_size(self):
        assert len(Symbol().pack()) == SYM_SIZE

    def test_create_and_properties(self):
        symbol = Symbol.create(10, STB_GLOBAL, STT_FUNC, 0x401000, 64, 1, name="main")
        assert symbol.binding == STB_GLOBAL
        assert symbol.symbol_type == STT_FUNC
        assert symbol.name == "main"

    def test_roundtrip(self):
        symbol = Symbol.create(3, STB_GLOBAL, STT_FUNC, 0x1234, 8, 1)
        parsed = Symbol.unpack(symbol.pack())
        assert parsed.st_value == 0x1234 and parsed.st_info == symbol.st_info

    def test_truncated_raises(self):
        with pytest.raises(ELFError):
            Symbol.unpack(b"\x00" * 10)


class TestDynamicEntry:
    def test_roundtrip(self):
        entry = DynamicEntry(d_tag=1, d_val=42)
        assert DynamicEntry.unpack(entry.pack()) == entry

    def test_truncated_raises(self):
        with pytest.raises(ELFError):
            DynamicEntry.unpack(b"\x01\x02")


class TestProgramHeader:
    def test_roundtrip(self):
        phdr = ProgramHeader(p_type=1, p_flags=5, p_offset=0, p_vaddr=0x400000,
                             p_paddr=0x400000, p_filesz=4096, p_memsz=4096)
        assert ProgramHeader.unpack(phdr.pack()) == phdr


class TestStringTable:
    def test_starts_with_nul(self):
        table = StringTable()
        assert table.pack()[0] == 0

    def test_add_and_get(self):
        table = StringTable()
        offset = table.add(".text")
        assert table.get(offset) == ".text"

    def test_deduplicates(self):
        table = StringTable()
        assert table.add("libm.so.6") == table.add("libm.so.6")

    def test_empty_string_offset_zero(self):
        assert StringTable().add("") == 0

    def test_out_of_range_get(self):
        with pytest.raises(ELFError):
            StringTable().get(999)

    def test_len_grows(self):
        table = StringTable()
        before = len(table)
        table.add("abc")
        assert len(table) == before + 4
