"""Tests for printable-string extraction and nm-style symbol listings."""

import pytest

from repro.elf.builder import ELFBuilder
from repro.elf.reader import ELFFile
from repro.elf.strings import extract_strings, strings_blob
from repro.elf.symbols import nm_listing, symbol_names
from repro.elf.structures import Symbol
from repro.elf.constants import STB_GLOBAL, STT_FUNC


class TestExtractStrings:
    def test_finds_ascii_runs(self):
        data = b"\x00\x01LAMMPS version 2024\x00\xffgmx_mdrun\x02"
        assert extract_strings(data) == ["LAMMPS version 2024", "gmx_mdrun"]

    def test_min_length_filter(self):
        data = b"ab\x00abcd\x00abcdef"
        assert extract_strings(data, min_length=4) == ["abcd", "abcdef"]
        assert extract_strings(data, min_length=2) == ["ab", "abcd", "abcdef"]

    def test_trailing_run_included(self):
        assert extract_strings(b"\x00ends with text") == ["ends with text"]

    def test_tabs_count_as_printable(self):
        assert extract_strings(b"col1\tcol2\x00") == ["col1\tcol2"]

    def test_invalid_min_length(self):
        with pytest.raises(ValueError):
            extract_strings(b"abc", min_length=0)

    def test_empty_input(self):
        assert extract_strings(b"") == []

    def test_blob_joins_with_newlines(self):
        data = b"first string\x00\x01second string\x00"
        assert strings_blob(data) == "first string\nsecond string"


def _extract_strings_reference(data: bytes, min_length: int = 4) -> list[str]:
    """The seed per-byte loop, kept verbatim as the oracle for the regex scan."""
    printable = frozenset(range(0x20, 0x7F)) | {0x09}
    results: list[str] = []
    current: list[int] = []
    for byte in data:
        if byte in printable:
            current.append(byte)
        else:
            if len(current) >= min_length:
                results.append(bytes(current).decode("ascii"))
            current.clear()
    if len(current) >= min_length:
        results.append(bytes(current).decode("ascii"))
    return results


class TestRegexScanEquivalence:
    """The compiled-regex scan must match the per-byte reference exactly."""

    @pytest.mark.parametrize("min_length", [1, 2, 4, 10])
    def test_random_blobs(self, min_length):
        from repro.util.rng import SeededRNG

        for seed in range(8):
            blob = SeededRNG(seed).bytes(2048)
            assert extract_strings(blob, min_length) == \
                _extract_strings_reference(blob, min_length)

    def test_boundary_bytes(self):
        # 0x1F / 0x7F sit just outside the printable range, 0x20 / 0x7E inside.
        blob = b"\x1f" + b" ~" * 3 + b"\x7f" + b"\t\t\t\t" + b"\x00" + b"abcd"
        assert extract_strings(blob) == _extract_strings_reference(blob)
        assert extract_strings(blob, 2) == _extract_strings_reference(blob, 2)

    def test_all_printable_and_all_binary(self):
        printable = bytes(range(0x20, 0x7F)) * 4
        binary = bytes(range(0x00, 0x09)) * 50
        assert extract_strings(printable) == _extract_strings_reference(printable)
        assert extract_strings(binary) == []


class TestNmListing:
    def _elf(self, functions, objects=()):
        builder = ELFBuilder()
        builder.set_text_from_source("x", size=256)
        builder.add_global_functions(list(functions))
        builder.add_global_objects(list(objects))
        return ELFFile(builder.build())

    def test_listing_format(self):
        listing = nm_listing(self._elf(["zeta", "alpha"], objects=["data_obj"]))
        lines = listing.splitlines()
        assert "D data_obj" in lines
        assert "T alpha" in lines and "T zeta" in lines

    def test_listing_is_sorted_and_order_independent(self):
        a = nm_listing(self._elf(["b_func", "a_func"]))
        b = nm_listing(self._elf(["a_func", "b_func"]))
        assert a == b
        assert a.splitlines() == sorted(a.splitlines())

    def test_empty_symbol_table(self):
        builder = ELFBuilder().set_text_from_source("x", size=128)
        assert nm_listing(ELFFile(builder.build())) == ""


class TestSymbolNames:
    def test_unique_sorted(self):
        symbols = [Symbol.create(0, STB_GLOBAL, STT_FUNC, 0, 0, 1, name=n)
                   for n in ("b", "a", "b", "")]
        assert symbol_names(symbols) == ["a", "b"]
