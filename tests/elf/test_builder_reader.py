"""Round-trip tests for the ELF builder and reader."""

import pytest

from repro.elf.builder import ELFBuilder
from repro.elf.constants import ET_DYN, ET_EXEC, STB_GLOBAL, STB_LOCAL, STT_OBJECT
from repro.elf.reader import ELFFile, is_elf
from repro.util.errors import ELFError


@pytest.fixture()
def rich_image() -> bytes:
    builder = ELFBuilder()
    builder.set_text_from_source("line one\nline two\nline three", size=4096, seed=1)
    builder.add_strings(["ICON atmosphere model", "namelist parser"])
    builder.add_comment("GCC: (SUSE Linux) 12.3.0")
    builder.add_comment("clang version 17.0.1 (Cray PE 24.03)")
    builder.add_needed_many(["libc.so.6", "libnetcdf.so.19"])
    builder.add_global_functions(["icon_run", "icon_init"])
    builder.add_global_objects(["icon_version_tag"])
    builder.add_local_symbols(["helper_static"])
    return builder.build()


class TestBuilder:
    def test_output_is_elf(self, rich_image):
        assert is_elf(rich_image)

    def test_text_size_respected(self):
        image = ELFBuilder().set_text_from_source("x", size=2048).build()
        assert ELFFile(image).get_section(".text").sh_size == 2048

    def test_text_from_source_deterministic(self):
        a = ELFBuilder().set_text_from_source("src", size=1024, seed=2).build()
        b = ELFBuilder().set_text_from_source("src", size=1024, seed=2).build()
        assert a == b

    def test_text_from_source_localised_changes(self):
        """Editing one source line changes only a fraction of the text bytes."""
        lines = [f"line {i}" for i in range(16)]
        base = ELFBuilder().set_text_from_source("\n".join(lines), size=4096, seed=0).build()
        lines[3] = "line 3 patched"
        patched = ELFBuilder().set_text_from_source("\n".join(lines), size=4096, seed=0).build()
        differing = sum(1 for a, b in zip(base, patched) if a != b)
        assert 0 < differing < len(base) // 2

    def test_invalid_text_size(self):
        with pytest.raises(ELFError):
            ELFBuilder().set_text_from_source("x", size=0)

    def test_shared_object_type(self):
        image = ELFBuilder(file_type=ET_DYN, soname="libfoo.so.1").build()
        elf = ELFFile(image)
        assert elf.header.e_type == ET_DYN
        assert elf.soname() == "libfoo.so.1"

    def test_extra_section(self):
        image = ELFBuilder().add_section(".note.gnu.build-id", b"\x12" * 16).build()
        assert ELFFile(image).section_data(".note.gnu.build-id") == b"\x12" * 16


class TestReader:
    def test_section_names(self, rich_image):
        names = ELFFile(rich_image).section_names()
        for expected in (".text", ".rodata", ".comment", ".dynamic", ".dynstr",
                         ".symtab", ".dynsym", ".strtab", ".shstrtab"):
            assert expected in names

    def test_comments(self, rich_image):
        assert ELFFile(rich_image).comment_strings() == [
            "GCC: (SUSE Linux) 12.3.0", "clang version 17.0.1 (Cray PE 24.03)",
        ]

    def test_needed_libraries_in_order(self, rich_image):
        assert ELFFile(rich_image).needed_libraries() == ["libc.so.6", "libnetcdf.so.19"]

    def test_dynamically_linked(self, rich_image):
        assert ELFFile(rich_image).is_dynamically_linked

    def test_static_binary_detection(self):
        image = ELFBuilder().set_text_from_source("static tool", size=512).build()
        assert not ELFFile(image).is_dynamically_linked

    def test_global_symbols_exclude_locals(self, rich_image):
        names = ELFFile(rich_image).global_symbol_names()
        assert "icon_run" in names and "icon_version_tag" in names
        assert "helper_static" not in names

    def test_symbol_types(self, rich_image):
        symbols = {s.name: s for s in ELFFile(rich_image).global_symbols()}
        assert symbols["icon_version_tag"].symbol_type == STT_OBJECT
        assert all(s.binding == STB_GLOBAL for s in symbols.values())

    def test_missing_section_returns_empty(self, rich_image):
        assert ELFFile(rich_image).section_data(".debug_info") == b""
        assert ELFFile(rich_image).get_section(".debug_info") is None

    def test_not_elf_raises(self):
        with pytest.raises(ELFError):
            ELFFile(b"#!/bin/bash\necho hi\n")

    def test_is_elf_helper(self, rich_image):
        assert is_elf(rich_image)
        assert not is_elf(b"plain text")
        assert not is_elf(b"")

    def test_executable_without_symbols(self):
        image = ELFBuilder(file_type=ET_EXEC).set_text_from_source("x", size=256).build()
        assert ELFFile(image).global_symbols() == []

    def test_missing_dynamic_means_no_needed(self):
        image = ELFBuilder().set_text_from_source("x", size=256).build()
        assert ELFFile(image).needed_libraries() == []
