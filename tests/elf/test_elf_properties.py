"""Property-based tests for the ELF builder/reader round trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.elf.builder import ELFBuilder
from repro.elf.reader import ELFFile
from repro.elf.strings import extract_strings

identifier = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=20)
soname = st.builds(lambda stem, major: f"lib{stem}.so.{major}", identifier,
                   st.integers(min_value=0, max_value=99))


class TestBuilderReaderProperties:
    @given(st.lists(soname, max_size=8, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_needed_roundtrip(self, libraries):
        builder = ELFBuilder().set_text_from_source("t", size=256)
        builder.add_needed_many(libraries)
        parsed = ELFFile(builder.build()).needed_libraries()
        assert parsed == libraries

    @given(st.lists(identifier, min_size=1, max_size=12, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_global_symbols_roundtrip(self, names):
        builder = ELFBuilder().set_text_from_source("t", size=256)
        builder.add_global_functions(names)
        assert ELFFile(builder.build()).global_symbol_names() == sorted(set(names))

    @given(st.lists(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                            min_size=4, max_size=30), max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_rodata_strings_recoverable(self, strings):
        builder = ELFBuilder().set_text_from_source("t", size=256)
        builder.add_strings(strings)
        rodata = ELFFile(builder.build()).section_data(".rodata")
        extracted = extract_strings(rodata, min_length=4)
        for text in strings:
            assert text in extracted

    @given(st.integers(min_value=1, max_value=32768))
    @settings(max_examples=25, deadline=None)
    def test_any_text_size_parses(self, size):
        image = ELFBuilder().set_text_from_source("src", size=size).build()
        elf = ELFFile(image)
        assert elf.get_section(".text").sh_size == size
