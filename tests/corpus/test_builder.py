"""Tests for the corpus builder (materialising the synthetic system)."""

import pytest

from repro.corpus.builder import SIREN_LIBRARY_PATH, CorpusBuilder
from repro.corpus.libraries import LIBRARY_CATALOG
from repro.corpus.packages import GROMACS, ICON, LAMMPS, PACKAGES
from repro.corpus.python_env import PYTHON_INTERPRETERS, PYTHON_PACKAGES
from repro.corpus.system_tools import SYSTEM_TOOLS
from repro.elf.reader import ELFFile
from repro.hashing.ssdeep import compare, fuzzy_hash
from repro.util.errors import CorpusError


class TestBaseSystemInstall:
    def test_all_libraries_installed(self, base_cluster):
        cluster, manifest = base_cluster
        for spec in LIBRARY_CATALOG:
            assert cluster.filesystem.exists(spec.path)
        assert set(manifest.library_paths) == {spec.key for spec in LIBRARY_CATALOG}

    def test_all_system_tools_installed(self, base_cluster):
        cluster, manifest = base_cluster
        assert len(manifest.system_tools) == len({tool.name for tool in SYSTEM_TOOLS})
        for path in manifest.system_tools.values():
            assert cluster.filesystem.get(path).executable

    def test_python_interpreters_and_extensions(self, base_cluster):
        cluster, manifest = base_cluster
        assert len(manifest.python_interpreters) == len(PYTHON_INTERPRETERS)
        interpreter = PYTHON_INTERPRETERS[0]
        for package in PYTHON_PACKAGES:
            assert cluster.filesystem.exists(package.extension_path(interpreter))

    def test_siren_library_installed_and_module_registered(self, base_cluster):
        cluster, manifest = base_cluster
        assert cluster.filesystem.exists(SIREN_LIBRARY_PATH)
        env = cluster.modules.load(["siren"])
        assert env["LD_PRELOAD"] == SIREN_LIBRARY_PATH

    def test_stack_modules_for_non_default_libraries(self, base_cluster):
        cluster, manifest = base_cluster
        assert "gromacs" in manifest.stack_modules
        env = cluster.modules.load(["gromacs"])
        assert "/gromacs/2024.1/lib" in env["LD_LIBRARY_PATH"]

    def test_default_search_path_extended_with_cray_dirs(self, base_cluster):
        cluster, _ = base_cluster
        assert any("cray" in directory for directory in cluster.linker.default_paths)

    def test_system_library_images_parse(self, base_cluster):
        cluster, _ = base_cluster
        elf = ELFFile(cluster.filesystem.read("/opt/cray/pe/mpich/8.1/lib/libmpi_cray.so.12"))
        assert elf.soname() == "libmpi_cray.so.12"
        assert "libfabric.so.1" in elf.needed_libraries()

    def test_bash_image_needs_tinfo(self, base_cluster):
        cluster, manifest = base_cluster
        elf = ELFFile(cluster.filesystem.read(manifest.tool("bash")))
        assert "libtinfo.so.6" in elf.needed_libraries()

    def test_static_tool_has_no_dynamic_section(self, base_cluster):
        cluster, manifest = base_cluster
        elf = ELFFile(cluster.filesystem.read(manifest.tool("busybox")))
        assert not elf.is_dynamically_linked

    def test_missing_tool_lookup_raises(self, base_cluster):
        _, manifest = base_cluster
        with pytest.raises(CorpusError):
            manifest.tool("notatool")
        with pytest.raises(CorpusError):
            manifest.interpreter("python2.7")


class TestPackageInstall:
    def test_variant_paths_and_ownership(self, app_cluster):
        cluster, manifest = app_cluster
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        assert icon.path.startswith("/project/")
        assert icon.owner == "alice"
        vfile = cluster.filesystem.get(icon.path)
        assert vfile.executable and vfile.metadata.uid != 0

    def test_shared_install_has_no_owner(self):
        from repro.hpcsim.cluster import Cluster

        cluster = Cluster()
        builder = CorpusBuilder(cluster)
        builder.install_base_system()
        user = cluster.add_user("bob")
        record = builder.install_variant(GROMACS, GROMACS.variants[0], user)
        assert record.owner == ""
        assert record.path.startswith("/appl/")
        # Reinstalling for another user returns the same record, not a duplicate.
        other = cluster.add_user("carol")
        again = builder.install_variant(GROMACS, GROMACS.variants[0], other)
        assert again is record

    def test_image_contains_compilers_symbols_needed(self, app_cluster):
        cluster, manifest = app_cluster
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        elf = ELFFile(cluster.filesystem.read(icon.path))
        comments = elf.comment_strings()
        assert any("SUSE" in comment for comment in comments)
        assert any("Cray" in comment for comment in comments)
        assert "icon_run_timeloop" in elf.global_symbol_names()
        assert "libclimatedt.so.2" in elf.needed_libraries()

    def test_unknown_copy_is_byte_identical(self, app_cluster):
        cluster, manifest = app_cluster
        original = manifest.find_executable("icon", "cray-r1", "alice")
        copy = manifest.find_executable("icon", "unknown-copy", "alice")
        assert copy.path != original.path
        assert copy.filename == "a.out"
        assert cluster.filesystem.read(copy.path) == cluster.filesystem.read(original.path)

    def test_patch_level_drives_similarity_decay(self, app_cluster):
        cluster, manifest = app_cluster
        base = fuzzy_hash(cluster.filesystem.read(
            manifest.find_executable("icon", "cray-r1", "alice").path))
        near = fuzzy_hash(cluster.filesystem.read(
            manifest.find_executable("icon", "cray-r2", "alice").path))
        far = fuzzy_hash(cluster.filesystem.read(
            manifest.find_executable("icon", "pre-proc", "alice").path))
        assert compare(base, near) > compare(base, far)
        assert compare(base, near) < 100

    def test_required_modules_cover_non_default_keys(self, app_cluster):
        _, manifest = app_cluster
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        assert "climatedt" in icon.required_modules

    def test_executables_for_filters_by_owner(self, app_cluster):
        _, manifest = app_cluster
        assert manifest.executables_for("icon", "alice")
        assert manifest.executables_for("icon", "nobody") == []

    def test_find_missing_variant_raises(self, app_cluster):
        _, manifest = app_cluster
        with pytest.raises(CorpusError):
            manifest.find_executable("icon", "does-not-exist")

    def test_install_all_packages_smoke(self):
        from repro.hpcsim.cluster import Cluster

        cluster = Cluster()
        builder = CorpusBuilder(cluster)
        builder.install_base_system()
        user = cluster.add_user("dave")
        for package in PACKAGES:
            records = builder.install_package(package, user)
            assert len(records) == len(package.variants)
