"""Tests for package, system-tool and Python-environment specifications."""

import pytest

from repro.corpus.libraries import LIBRARY_BY_KEY
from repro.corpus.packages import ICON, LAMMPS, PACKAGES, PACKAGES_BY_NAME
from repro.corpus.python_env import (
    COMMON_PACKAGES,
    PYTHON_INTERPRETERS,
    PYTHON_INTERPRETERS_BY_NAME,
    PYTHON_PACKAGES,
    PYTHON_PACKAGES_BY_NAME,
    extension_paths,
)
from repro.corpus.system_tools import SYSTEM_TOOLS, SYSTEM_TOOLS_BY_NAME, tool_path
from repro.corpus.toolchains import TOOLCHAINS
from repro.hpcsim.filesystem import is_system_path


class TestPackageSpecs:
    def test_paper_labels_present(self):
        assert set(PACKAGES_BY_NAME) == {
            "LAMMPS", "GROMACS", "miniconda", "janko", "icon", "amber", "gzip",
            "alexandria", "RadRad",
        }

    def test_every_variant_compiler_is_known(self):
        for package in PACKAGES:
            for variant in package.variants:
                for compiler in variant.compilers:
                    assert compiler in TOOLCHAINS

    def test_every_library_key_is_known(self):
        for package in PACKAGES:
            for variant in package.variants:
                for key in variant.library_keys(package.base_library_keys):
                    assert key in LIBRARY_BY_KEY

    def test_variant_ids_unique_per_package(self):
        for package in PACKAGES:
            ids = [variant.variant_id for variant in package.variants]
            assert len(ids) == len(set(ids))

    def test_variant_lookup(self):
        assert ICON.variant("cray-r1").patch_level == 0
        with pytest.raises(KeyError):
            ICON.variant("nope")

    def test_library_keys_drop_and_extend(self):
        variant = LAMMPS.variant("kokkos")
        keys = variant.library_keys(LAMMPS.base_library_keys)
        assert "numa" not in keys
        assert "rocm-torch" in keys and "numa-rocm-torch" in keys

    def test_unknown_copy_variant_is_exact_copy_of_known(self):
        unknown = ICON.variant("unknown-copy")
        assert unknown.copy_of == "cray-r1"
        assert unknown.filename == "a.out"
        assert unknown.subdir.startswith("/scratch/")

    def test_icon_has_most_variants(self):
        counts = {package.name: len(package.variants) for package in PACKAGES}
        assert counts["icon"] == max(counts.values())
        assert counts["GROMACS"] == 1

    def test_public_functions_nonempty(self):
        for package in PACKAGES:
            assert len(package.public_functions) >= 8


class TestSystemTools:
    def test_paper_top10_tools_present(self):
        for name in ("srun", "bash", "lua5.3", "rm", "cat", "uname", "ls", "mkdir",
                     "grep", "cp"):
            assert name in SYSTEM_TOOLS_BY_NAME

    def test_all_tools_live_in_system_directories(self):
        for tool in SYSTEM_TOOLS:
            assert is_system_path(f"{tool.directory}/{tool.name}")

    def test_library_keys_known(self):
        for tool in SYSTEM_TOOLS:
            for key in tool.library_keys:
                assert key in LIBRARY_BY_KEY

    def test_bash_links_tinfo(self):
        assert "libtinfo-default" in SYSTEM_TOOLS_BY_NAME["bash"].library_keys

    def test_tool_path_helper(self):
        assert tool_path("bash") == "/usr/bin/bash"

    def test_static_tool_flagged(self):
        assert SYSTEM_TOOLS_BY_NAME["busybox"].static

    def test_reasonable_tool_count(self):
        assert len(SYSTEM_TOOLS) >= 50


class TestPythonEnvironment:
    def test_paper_interpreters(self):
        assert set(PYTHON_INTERPRETERS_BY_NAME) == {"python3.6", "python3.10", "python3.11"}

    def test_interpreters_in_system_directories(self):
        for interpreter in PYTHON_INTERPRETERS:
            assert is_system_path(interpreter.path)

    def test_figure3_vocabulary_size(self):
        assert len(PYTHON_PACKAGES) == 36
        for name in ("heapq", "struct", "mpi4py", "numpy", "pandas", "scipy", "zoneinfo",
                     "sha3", "blake2"):
            assert name in PYTHON_PACKAGES_BY_NAME

    def test_common_packages_subset(self):
        assert set(COMMON_PACKAGES) <= set(PYTHON_PACKAGES_BY_NAME)

    def test_extension_paths_stdlib_vs_site(self):
        heapq_path = PYTHON_PACKAGES_BY_NAME["heapq"].extension_path(
            PYTHON_INTERPRETERS_BY_NAME["python3.10"])
        numpy_path = PYTHON_PACKAGES_BY_NAME["numpy"].extension_path(
            PYTHON_INTERPRETERS_BY_NAME["python3.10"])
        assert "/lib-dynload/_heapq.cpython-310" in heapq_path
        assert "/site-packages/numpy/core/_multiarray_umath.cpython-310" in numpy_path

    def test_extension_paths_helper_skips_unknown(self):
        paths = extension_paths("python3.11", ["numpy", "not-a-package"])
        assert len(paths) == 1
        assert "311" in paths[0]

    def test_short_version(self):
        assert PYTHON_INTERPRETERS_BY_NAME["python3.6"].short_version == "3.6"
