"""Tests for toolchain definitions and the library-tag derivation."""

import pytest

from repro.corpus.libraries import (
    LIBRARY_BY_KEY,
    LIBRARY_CATALOG,
    LIBRARY_SUBSTRINGS,
    derive_library_tag,
    derive_tags,
    library_path,
    sonames_for_keys,
)
from repro.corpus.toolchains import (
    TOOLCHAIN_ORDER,
    TOOLCHAINS,
    comments_for,
    compiler_labels,
    provenance_label,
)


class TestToolchains:
    def test_all_eight_paper_toolchains_present(self):
        assert set(TOOLCHAIN_ORDER) == set(TOOLCHAINS)
        assert len(TOOLCHAINS) == 8

    def test_comments_round_trip_to_labels(self):
        for label, toolchain in TOOLCHAINS.items():
            assert provenance_label(toolchain.comment) == label

    def test_comments_for(self):
        comments = comments_for(["GCC [SUSE]", "clang [Cray]"])
        assert comments[0].startswith("GCC: (SUSE")
        assert "Cray" in comments[1]

    def test_unknown_gcc_flavour_still_grouped(self):
        assert provenance_label("GCC: (Debian 12.2.0-14) 12.2.0").startswith("GCC")

    def test_unknown_clang_vendor(self):
        assert provenance_label("clang version 16.0.0 (AMD ROCm)") == "clang [AMD]"
        assert provenance_label("clang version 16.0.0") == "clang"

    def test_novel_toolchain_reported_by_leading_token(self):
        assert provenance_label("ifx (IFORT) 2024.0") == "ifx"

    def test_compiler_labels_deduplicate_in_order(self):
        comments = [TOOLCHAINS["GCC [SUSE]"].comment, TOOLCHAINS["clang [Cray]"].comment,
                    TOOLCHAINS["GCC [SUSE]"].comment]
        assert compiler_labels(comments) == ["GCC [SUSE]", "clang [Cray]"]


class TestLibraryTagDerivation:
    @pytest.mark.parametrize(
        "path, expected",
        [
            ("/lib64/libpthread.so.0", "pthread"),
            ("/opt/cray/pe/libsci/23.12/lib/libsci_cray.so.6", "libsci-cray"),
            ("/opt/rocm-6.0.3/lib/librocfft.so.0", "rocfft-rocm-fft"),
            ("/opt/rocm-6.0.3/lib/librocblas.so.4", "rocm-blas"),
            ("/opt/rocm-6.0.3/lib/libMIOpen.so.1", "MIOpen-rocm"),
            ("/opt/cray/pe/hdf5-parallel/1.12/lib/libhdf5_fortran_parallel.so.310",
             "hdf5-fortran-parallel-cray"),
            ("/usr/lib64/libdrm_amdgpu.so.1", "amdgpu-drm"),
            ("/appl/local/siren/lib/siren.so", "siren"),
            ("/project/project_465000300/climatedt/lib/libclimatedt_yaml.so.2",
             "climatedt-yaml"),
            ("/appl/spack/v0.21/opt/openblas-0.3.24/lib/libopenblas.so.0", "blas-spack"),
            ("/lib64/libc.so.6", None),
            ("/lib64/libtinfo.so.6", None),
        ],
    )
    def test_known_paths(self, path, expected):
        assert derive_library_tag(path) == expected

    def test_tag_order_follows_substring_catalog(self):
        tag = derive_library_tag("/opt/rocm/lib/librocfft.so")
        parts = tag.split("-")
        indices = [LIBRARY_SUBSTRINGS.index(part) for part in parts]
        assert indices == sorted(indices)

    def test_derive_tags_unique_in_order(self):
        tags = derive_tags([
            "/lib64/libpthread.so.0",
            "/lib64/libpthread.so.0",
            "/opt/rocm-6.0.3/lib/libamdhip64.so.6",
            "/lib64/libc.so.6",
        ])
        assert tags == ["pthread", "rocm"]

    def test_substring_list_matches_paper(self):
        assert LIBRARY_SUBSTRINGS[0] == "libsci"
        assert LIBRARY_SUBSTRINGS[-1] == "siren"
        assert "MIOpen" in LIBRARY_SUBSTRINGS
        assert len(LIBRARY_SUBSTRINGS) == 34


class TestLibraryCatalog:
    def test_keys_unique(self):
        keys = [spec.key for spec in LIBRARY_CATALOG]
        assert len(keys) == len(set(keys))

    def test_paths_unique(self):
        paths = [spec.path for spec in LIBRARY_CATALOG]
        assert len(paths) == len(set(paths))

    def test_tagged_keys_match_their_derived_tag(self):
        """Catalog keys of tagged libraries equal the tag their path derives to."""
        untagged_ok = {"libc", "libm", "libdl", "librt", "libstdc++", "libgcc_s", "ld-linux",
                       "libz", "libtinfo-default", "libtinfo-spack", "libtinfo-sw",
                       "libreadline", "liblua", "libselinux", "libacl", "libpcre", "libcap",
                       "libcrypto", "libexpat", "libffi", "libmunge", "libslurm"}
        for spec in LIBRARY_CATALOG:
            tag = derive_library_tag(spec.path)
            if spec.key in untagged_ok:
                continue
            assert tag == spec.key, f"{spec.key} derives to {tag}"

    def test_paper_tag_vocabulary_covered(self):
        """Every tag appearing in Figure 2 / Figure 5 is producible by the catalog."""
        figure_tags = {
            "siren", "pthread", "cray", "quadmath-cray", "fabric-cray", "pmi-cray", "rocm",
            "numa", "drm", "amdgpu-drm", "fortran", "libsci-cray", "rocm-blas",
            "rocsolver-rocm", "rocsparse-rocm", "fft-cray", "rocm-fft", "rocfft-rocm-fft",
            "craymath-cray", "MIOpen-rocm", "gromacs", "boost", "netcdf-cray", "amdgpu-cray",
            "openacc-cray", "rocm-torch", "numa-rocm-torch", "numa-spack", "spack",
            "blas-spack", "rocsolver-spack", "rocsparse-spack", "drm-spack",
            "amdgpu-drm-spack", "climatedt", "climatedt-yaml", "hdf5-cray", "cuda-amber",
            "amber", "netcdf-parallel-cray", "hdf5-parallel-cray",
            "hdf5-fortran-parallel-cray", "torch-tykky", "numa-torch-tykky",
        }
        derived = {derive_library_tag(spec.path) for spec in LIBRARY_CATALOG}
        missing = figure_tags - derived
        assert not missing, f"missing tags: {missing}"

    def test_needed_sonames_exist_in_catalog(self):
        sonames = {spec.soname for spec in LIBRARY_CATALOG}
        for spec in LIBRARY_CATALOG:
            for needed in spec.needed:
                assert needed in sonames, f"{spec.key} needs unknown {needed}"

    def test_lookup_helpers(self):
        assert library_path("pthread") == "/lib64/libpthread.so.0"
        assert sonames_for_keys(["libc", "pthread"]) == ["libc.so.6", "libpthread.so.0"]
        assert LIBRARY_BY_KEY["siren"].soname == "siren.so"

    def test_bash_variant_instances_exist(self):
        """Three libtinfo installs drive the Table 4 bash variants."""
        tinfo = [spec for spec in LIBRARY_CATALOG if spec.soname == "libtinfo.so.6"]
        assert len(tinfo) == 3
        assert any(spec.needed == ("libm.so.6",) for spec in tinfo)
