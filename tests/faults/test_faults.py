"""The fault-injection layer itself: plans, the faulty channel, store faults.

Everything here must be exactly reproducible from the plan seed -- that is
the property that turns chaos testing into regression testing.
"""

import sqlite3

import pytest

from repro.db.store import MessageStore, is_transient_sqlite_error
from repro.faults import (
    ChannelFaultProfile,
    FaultPlan,
    FaultyChannel,
    StoreFaultInjector,
    StoreFaultProfile,
    WorkerFaultProfile,
    preset_plans,
)
from repro.transport.channel import InMemoryChannel
from repro.transport.messages import InfoType, Layer, UDPMessage
from repro.util.errors import ReproError
from repro.util.retry import RetryPolicy


def _datagrams(count: int) -> list[bytes]:
    return [UDPMessage(jobid="1", stepid="0", pid=pid, path_hash=f"{pid:032x}",
                       host="n1", time=100, layer=Layer.SELF,
                       info_type=InfoType.PROCINFO, content=f"c{pid}").encode()
            for pid in range(count)]


def _run_channel(plan: FaultPlan, datagrams: list[bytes]):
    channel = FaultyChannel(plan=plan, inner=InMemoryChannel())
    delivered: list[bytes] = []
    channel.subscribe(delivered.append)
    for datagram in datagrams:
        channel.send(datagram)
    channel.flush()
    return channel, delivered


class TestFaultPlan:
    def test_rates_are_validated(self):
        with pytest.raises(ReproError):
            ChannelFaultProfile(drop_rate=1.5)
        with pytest.raises(ReproError):
            StoreFaultProfile(error_rate=-0.1)
        with pytest.raises(ReproError):
            WorkerFaultProfile(kill_after_batches=0)

    def test_active_and_order_preserving(self):
        assert not FaultPlan().active
        assert FaultPlan(channel=ChannelFaultProfile(drop_rate=0.1)).active
        assert FaultPlan(workers=(WorkerFaultProfile(kill_after_batches=1),)).active
        assert ChannelFaultProfile(drop_rate=0.5, jitter_rate=0.5).order_preserving
        assert not ChannelFaultProfile(reorder_rate=0.01).order_preserving

    def test_worker_fault_lookup(self):
        plan = FaultPlan(workers=(WorkerFaultProfile(shard=2, kill_after_batches=3),))
        assert plan.worker_fault_for(2).kill_after_batches == 3
        assert plan.worker_fault_for(0) is None

    def test_presets_cover_the_degradation_axes(self):
        plans = preset_plans(seed=11)
        assert not plans["baseline"].active
        assert plans["loss-20pct"].channel.drop_rate == 0.20
        assert all(plan.seed == 11 for plan in plans.values())
        # every non-baseline preset actually injects something
        assert all(plan.active for name, plan in plans.items() if name != "baseline")


class TestFaultyChannel:
    def test_same_plan_same_faults(self):
        plan = FaultPlan(seed=99, channel=ChannelFaultProfile(
            drop_rate=0.05, duplicate_rate=0.1, corrupt_rate=0.05,
            truncate_rate=0.05, reorder_rate=0.05, jitter_rate=0.02))
        datagrams = _datagrams(500)
        first_channel, first = _run_channel(plan, datagrams)
        second_channel, second = _run_channel(plan, datagrams)
        assert first == second
        assert first_channel.fault_counters() == second_channel.fault_counters()

    def test_different_seed_different_faults(self):
        datagrams = _datagrams(500)
        profile = ChannelFaultProfile(drop_rate=0.1)
        _, first = _run_channel(FaultPlan(seed=1, channel=profile), datagrams)
        _, second = _run_channel(FaultPlan(seed=2, channel=profile), datagrams)
        assert first != second

    def test_conservation_drop_and_duplicate(self):
        plan = FaultPlan(seed=5, channel=ChannelFaultProfile(
            drop_rate=0.1, duplicate_rate=0.1))
        datagrams = _datagrams(1000)
        channel, delivered = _run_channel(plan, datagrams)
        assert len(delivered) == (channel.datagrams_sent
                                  - channel.datagrams_dropped
                                  + channel.duplicated)
        assert channel.in_flight == 0
        assert 0.05 < channel.observed_loss_rate < 0.2

    def test_order_preserving_profiles_preserve_order(self):
        plan = FaultPlan(seed=3, channel=ChannelFaultProfile(
            drop_rate=0.2, jitter_rate=0.1))
        datagrams = _datagrams(400)
        _, delivered = _run_channel(plan, datagrams)
        positions = {datagram: index for index, datagram in enumerate(datagrams)}
        indices = [positions[datagram] for datagram in delivered]
        assert indices == sorted(indices)

    def test_reordering_displaces_but_loses_nothing(self):
        plan = FaultPlan(seed=8, channel=ChannelFaultProfile(reorder_rate=0.2))
        datagrams = _datagrams(300)
        channel, delivered = _run_channel(plan, datagrams)
        assert sorted(delivered) == sorted(datagrams)  # nothing lost
        assert channel.reordered > 0
        positions = {datagram: index for index, datagram in enumerate(datagrams)}
        indices = [positions[datagram] for datagram in delivered]
        assert indices != sorted(indices)  # something actually moved

    def test_flush_releases_holdbacks(self):
        plan = FaultPlan(seed=4, channel=ChannelFaultProfile(
            reorder_rate=1.0, reorder_depth=1000))
        channel = FaultyChannel(plan=plan, inner=InMemoryChannel())
        delivered: list[bytes] = []
        channel.subscribe(delivered.append)
        for datagram in _datagrams(10):
            channel.send(datagram)
        held = channel.in_flight
        assert held > 0
        assert channel.flush() == held
        assert channel.in_flight == 0
        assert len(delivered) == 10


class TestStoreFaults:
    def test_transient_classification(self):
        assert is_transient_sqlite_error(sqlite3.OperationalError("database is locked"))
        assert is_transient_sqlite_error(sqlite3.OperationalError("database table is busy"))
        assert not is_transient_sqlite_error(
            sqlite3.OperationalError("database or disk is full"))

    def test_retry_absorbs_bursts_shorter_than_the_budget(self):
        # Kept gentle on purpose: each retry re-draws the error gate, so a
        # high rate can chain fresh bursts past any finite budget.
        plan = FaultPlan(seed=21, store=StoreFaultProfile(error_rate=0.1,
                                                          error_burst=2))
        store = MessageStore(retry=RetryPolicy(attempts=6, base_delay=0.0))
        store._sleep = lambda _: None  # keep the test instant
        injector = StoreFaultInjector(plan).install(store)
        messages = [UDPMessage(jobid="1", stepid="0", pid=pid, path_hash="h",
                               host="n1", time=1, layer=Layer.SELF,
                               info_type=InfoType.PROCINFO, content="x")
                    for pid in range(50)]
        for message in messages:
            store.insert_many([message])
        assert store.message_count() == 50       # every write eventually landed
        assert injector.transient_raised > 0     # and faults genuinely fired
        assert store.write_retries == injector.transient_raised

    def test_burst_longer_than_budget_propagates(self):
        plan = FaultPlan(seed=21, store=StoreFaultProfile(error_rate=1.0,
                                                          error_burst=10))
        store = MessageStore(retry=RetryPolicy(attempts=2, base_delay=0.0))
        store._sleep = lambda _: None
        StoreFaultInjector(plan).install(store)
        message = UDPMessage(jobid="1", stepid="0", pid=1, path_hash="h",
                             host="n1", time=1, layer=Layer.SELF,
                             info_type=InfoType.PROCINFO, content="x")
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.insert_many([message])

    def test_disk_full_is_never_retried(self):
        plan = FaultPlan(seed=21, store=StoreFaultProfile(disk_full_after=0))
        store = MessageStore(retry=RetryPolicy(attempts=8, base_delay=0.0))
        store._sleep = lambda _: None
        injector = StoreFaultInjector(plan).install(store)
        message = UDPMessage(jobid="1", stepid="0", pid=1, path_hash="h",
                             host="n1", time=1, layer=Layer.SELF,
                             info_type=InfoType.PROCINFO, content="x")
        with pytest.raises(sqlite3.OperationalError, match="full"):
            store.insert_many([message])
        assert injector.disk_full_raised == 1
        assert store.write_retries == 0  # non-transient: not a single retry

    def test_injection_is_deterministic(self):
        def run() -> int:
            plan = FaultPlan(seed=33, store=StoreFaultProfile(error_rate=0.2))
            store = MessageStore(retry=RetryPolicy(attempts=4, base_delay=0.0))
            store._sleep = lambda _: None
            injector = StoreFaultInjector(plan).install(store)
            for pid in range(40):
                store.insert_many([UDPMessage(
                    jobid="1", stepid="0", pid=pid, path_hash="h", host="n1",
                    time=1, layer=Layer.SELF, info_type=InfoType.PROCINFO,
                    content="x")])
            return injector.transient_raised

        assert run() == run()
