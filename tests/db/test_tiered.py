"""Tests for the tiered record store (bronze/silver/gold).

The load-bearing property is *byte identity*: every gold rollup answer must
equal the corresponding :mod:`repro.analysis.stats` table recomputed from
the key-sorted record list -- across backends, ingest orders, re-delivery,
superseding versions, compaction, retention, reopen, and full campaigns in
every ingest mode.  The rollups are an optimisation, never a new answer.
"""

import random

import pytest

from repro.analysis import stats
from repro.db.store import MessageStore, ProcessRecord
from repro.db.tiered import (DEFAULT_SHARDS, MemoryBackend, SqliteBackend,
                             TieredStore, build_tiered_store, record_digest,
                             record_key, shard_of_key)
from repro.util.counters import assert_registered_counters
from repro.util.errors import StoreError
from repro.workload import CampaignConfig, DeploymentCampaign
from repro.workload.profiles import DEFAULT_PROFILES

_USERS = {1000 + i: f"user_{i}" for i in range(6)}
_OBJECT_SETS = (
    "/lib64/libc.so.6\n/lib64/libtinfo.so.5",
    "/lib64/libc.so.6\n/lib64/libtinfo.so.6\n/lib64/libm.so.6",
    "/lib64/libc.so.6",
    "",
)


def _record(index: int, rng: random.Random) -> ProcessRecord:
    category = rng.choice(("system", "python", "user"))
    executable = {
        "system": rng.choice(("/usr/bin/bash", "/usr/bin/grep", "/usr/bin/awk")),
        "python": "/usr/bin/python3",
        "user": rng.choice(("/home/p/app", "/home/p/model")),
    }[category]
    return ProcessRecord(
        jobid=f"j{rng.randrange(20)}", stepid="0", pid=100 + index,
        hash=f"h{rng.randrange(9)}", host=f"n{index % 4}", time=1000 + index,
        uid=rng.choice(list(_USERS)), executable=executable, category=category,
        objects=rng.choice(_OBJECT_SETS), objects_h=f"oh{rng.randrange(4)}",
        script_h="sh1" if category == "python" else "",
        modules="PrgEnv-cray", compilers="Cray clang 14;",
        maps="55a000-55afff r-xp /usr/bin/bash",
        file_metadata="rwxr-xr-x root root 4096",
        python_packages="numpy,scipy" if category == "python" else "")


def _records(count: int, seed: int) -> list[ProcessRecord]:
    rng = random.Random(seed)
    return [_record(index, rng) for index in range(count)]


def _sorted(records) -> list[ProcessRecord]:
    return sorted(records, key=lambda r: (r.jobid, r.stepid, r.pid, r.hash,
                                          r.host, r.time))


def _assert_tables_match(tiered: TieredStore, records, user_names,
                         campaign=None) -> None:
    """Every gold answer byte-identical to the recompute reference."""
    reference = _sorted(records)
    assert tiered.user_activity(campaign) == \
        stats.user_activity_table(reference, user_names)
    assert tiered.system_executables(campaign) == \
        stats.system_executable_table(reference, user_names)
    assert tiered.shared_object_variants("bash", campaign) == \
        stats.shared_object_variant_table(reference, "bash")
    assert tiered.python_interpreters(campaign) == \
        stats.python_interpreter_table(reference, user_names)


BACKENDS = [pytest.param(MemoryBackend, id="memory"),
            pytest.param(SqliteBackend, id="sqlite")]


class TestContentAddressing:
    def test_record_key_and_shard_are_content_functions(self):
        a, b = _records(2, seed=1)[0], _records(2, seed=1)[0]
        assert record_key(a) == record_key(b)
        assert record_digest(a) == record_digest(b)
        assert shard_of_key(record_key(a), 8) == shard_of_key(record_key(b), 8)
        assert 0 <= shard_of_key(record_key(a), 8) < 8

    def test_digest_sees_every_field(self):
        base = _records(1, seed=2)[0]
        changed = _records(1, seed=2)[0]
        changed.modules = "PrgEnv-gnu"
        assert record_key(base) == record_key(changed)  # identity unchanged
        assert record_digest(base) != record_digest(changed)


@pytest.mark.parametrize("backend_cls", BACKENDS)
class TestRollupEquivalence:
    """rollup == recompute, both backends, shuffled ingest, many seeds."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_shuffled_batches_match_recompute(self, backend_cls, seed):
        records = _records(120, seed=seed)
        shuffled = list(records)
        random.Random(seed).shuffle(shuffled)
        tiered = TieredStore(backend_cls(), campaign="c", user_names=_USERS)
        # Ingest in arbitrary batch boundaries and arrival order.
        for start in range(0, len(shuffled), 17):
            tiered.ingest_records(shuffled[start:start + 17])
        _assert_tables_match(tiered, records, _USERS)
        assert tiered.record_count() == len(records)
        tiered.close()

    def test_mid_ingest_snapshots_match_recompute(self, backend_cls):
        """The rollups are right at *every* prefix, not just at the end."""
        records = _records(90, seed=5)
        tiered = TieredStore(backend_cls(), campaign="c", user_names=_USERS)
        for start in range(0, len(records), 30):
            tiered.ingest_records(records[start:start + 30])
            _assert_tables_match(tiered, records[:start + 30], _USERS)
        tiered.close()

    def test_redelivery_is_a_dedup_skip(self, backend_cls):
        records = _records(40, seed=3)
        tiered = TieredStore(backend_cls(), campaign="c", user_names=_USERS)
        assert tiered.ingest_records(records) == len(records)
        assert tiered.ingest_records(records) == 0  # unchanged -> skipped
        assert tiered.statistics()["rollup_dedup_skips"] == len(records)
        _assert_tables_match(tiered, records, _USERS)
        tiered.close()

    def test_changed_record_supersedes_and_requeries(self, backend_cls):
        records = _records(40, seed=4)
        tiered = TieredStore(backend_cls(), campaign="c", user_names=_USERS)
        tiered.ingest_records(records)
        updated = _records(40, seed=4)
        updated[7].modules = "PrgEnv-gnu"
        updated[7].executable = "/usr/bin/sed"
        tiered.ingest_records([updated[7]])
        _assert_tables_match(tiered, updated, _USERS)
        assert tiered.record_count() == len(records)  # a version, not a row
        assert tiered.statistics()["rollup_query_misses"] >= 1
        tiered.close()

    def test_compaction_is_idempotent(self, backend_cls):
        records = _records(60, seed=6)
        tiered = TieredStore(backend_cls(), campaign="c", user_names=_USERS)
        tiered.ingest_records(records)
        updated = _records(60, seed=6)
        for index in (3, 12, 30):
            updated[index].objects = "/lib64/libnew.so"
        tiered.ingest_records([updated[3], updated[12], updated[30]])
        silver_rows = tiered.statistics()["silver_rows"]
        dropped = tiered.compact()
        assert dropped == 3  # exactly the superseded versions
        assert tiered.statistics()["silver_rows"] == silver_rows - 3
        _assert_tables_match(tiered, updated, _USERS)
        # Second pass finds nothing to fold -- and changes nothing.
        assert tiered.compact() == 0
        _assert_tables_match(tiered, updated, _USERS)
        tiered.close()

    def test_cross_campaign_blob_dedup(self, backend_cls):
        """Two campaigns over the same payloads store each blob once."""
        tiered = TieredStore(backend_cls(), campaign="a", user_names=_USERS)
        first = _records(50, seed=8)
        tiered.ingest_records(first, campaign="a")
        blobs_after_one = tiered.statistics()["blob_entries"]
        second = _records(50, seed=9)
        for index, record in enumerate(second):
            record.pid += 10_000  # distinct identities, same payload pools
        tiered.ingest_records(second, campaign="b")
        assert tiered.statistics()["blob_entries"] == blobs_after_one
        assert tiered.statistics()["blob_dedup_hits"] > len(first)
        # Per-campaign rollups stay independent and correct.
        _assert_tables_match(tiered, first, _USERS, campaign="a")
        _assert_tables_match(tiered, second, _USERS, campaign="b")
        tiered.close()

    def test_retention_drops_one_campaign_and_keeps_shared_blobs(
            self, backend_cls):
        tiered = TieredStore(backend_cls(), campaign="a", user_names=_USERS)
        first = _records(30, seed=10)
        tiered.ingest_records(first, campaign="a")
        second = _records(30, seed=11)
        for record in second:
            record.pid += 10_000
        tiered.ingest_records(second, campaign="b")
        assert tiered.drop_campaign("a") == len(first)
        assert tiered.campaigns() == ["b"]
        assert tiered.record_count() == len(second)
        _assert_tables_match(tiered, second, _USERS)  # b now unambiguous
        # Blobs referenced by the survivor were not collected.
        assert tiered.statistics()["blob_entries"] > 0
        assert tiered.drop_campaign("a") == 0  # idempotent
        tiered.close()

    def test_multi_campaign_query_without_campaign_is_ambiguous(
            self, backend_cls):
        tiered = TieredStore(backend_cls(), campaign="a", user_names=_USERS)
        tiered.ingest_records(_records(5, seed=12), campaign="a")
        more = _records(5, seed=13)
        for record in more:
            record.pid += 10_000
        tiered.ingest_records(more, campaign="b")
        with pytest.raises(StoreError):
            tiered.user_activity()
        tiered.close()

    def test_statistics_keys_are_all_registered(self, backend_cls):
        tiered = TieredStore(backend_cls(), campaign="c", user_names=_USERS)
        tiered.ingest_records(_records(10, seed=14))
        assert_registered_counters(tiered.statistics(),
                                   context="TieredStore.statistics()")
        tiered.close()


class TestSqlitePersistence:
    def test_reopen_rebuilds_gold_from_silver(self, tmp_path):
        path = str(tmp_path / "tiers.db")
        records = _records(80, seed=20)
        tiered = TieredStore(SqliteBackend(path), campaign="c",
                             user_names=_USERS)
        tiered.ingest_records(records)
        expected = tiered.user_activity()
        tiered.close()
        reopened = TieredStore(SqliteBackend(path), campaign="c",
                               user_names=_USERS)
        assert reopened.statistics()["rollup_rebuilds"] == 1
        assert reopened.user_activity() == expected
        _assert_tables_match(reopened, records, _USERS)
        reopened.close()

    def test_shard_count_is_pinned_at_creation(self, tmp_path):
        path = str(tmp_path / "tiers.db")
        tiered = TieredStore(SqliteBackend(path), shards=4, campaign="c")
        tiered.ingest_records(_records(5, seed=21))
        tiered.close()
        with pytest.raises(StoreError, match="shard"):
            TieredStore(SqliteBackend(path), shards=8, campaign="c")

    def test_factory_builds_both_backends_and_rejects_unknown(self, tmp_path):
        memory = build_tiered_store("memory")
        assert isinstance(memory.backend, MemoryBackend)
        on_disk = build_tiered_store(
            "sqlite", store_path=str(tmp_path / "siren.db"))
        assert isinstance(on_disk.backend, SqliteBackend)
        assert (tmp_path / "siren.db.tiered").exists()
        on_disk.close()
        with pytest.raises(StoreError):
            build_tiered_store("parquet")

    def test_default_shards(self):
        tiered = TieredStore(MemoryBackend())
        assert tiered.shards == DEFAULT_SHARDS
        tiered.close()


class TestMessageStoreSync:
    def _record(self, pid: int) -> ProcessRecord:
        return ProcessRecord(jobid="1", stepid="0", pid=pid, hash="a" * 32,
                             host="n1", time=100, uid=1000,
                             executable=f"/usr/bin/x{pid}", category="system")

    def test_inserts_auto_sync_through_the_delta_stream(self):
        store = MessageStore()
        tiered = TieredStore(MemoryBackend(), campaign="c")
        store.attach_tiered(tiered)
        store.insert_processes([self._record(1), self._record(2)])
        assert tiered.record_count() == 2
        # Every insert flavour feeds the same cursor; re-offered keys are
        # first-close-wins in bronze, so silver sees them exactly once.
        store.insert_processes_if_absent([self._record(2), self._record(3)])
        assert tiered.record_count() == 3
        store.insert_or_replace_processes([self._record(3)])
        assert tiered.record_count() == 3
        assert tiered.statistics()["rollup_syncs"] >= 3
        assert _sorted(store.load_processes()) == _sorted(tiered.records())

    def test_attach_syncs_preexisting_records(self):
        store = MessageStore()
        store.insert_processes([self._record(1)])
        tiered = TieredStore(MemoryBackend(), campaign="c")
        store.attach_tiered(tiered)
        assert tiered.record_count() == 1


class TestCampaignProperty:
    """Full campaigns: rollups match recompute in every ingest mode."""

    PROFILES = DEFAULT_PROFILES[:3]

    def _run(self, *, seed=17, loss_rate=0.01, **overrides):
        config = CampaignConfig(scale=0.0, seed=seed, loss_rate=loss_rate,
                                rollups=True, **overrides)
        return DeploymentCampaign(config=config, profiles=self.PROFILES).run()

    def _assert_result_matches(self, result):
        tiered = result.tiered
        assert tiered is not None
        assert tiered.record_count() == len(result.records)
        _assert_tables_match(tiered, result.records, result.user_names)
        assert_registered_counters(result.statistics(),
                                   context="CampaignResult.statistics()")

    @pytest.mark.parametrize("seed,loss_rate", [(17, 0.0), (23, 0.01)])
    def test_batch_campaign_rollups_match(self, seed, loss_rate):
        self._assert_result_matches(
            self._run(seed=seed, loss_rate=loss_rate,
                      store_backend="memory"))

    def test_streaming_campaign_rollups_match(self):
        self._assert_result_matches(
            self._run(ingest_mode="streaming", keep_raw_messages=False))

    def test_sharded_streaming_campaign_rollups_match(self):
        self._assert_result_matches(
            self._run(ingest_mode="streaming", ingest_shards=2,
                      keep_raw_messages=False, store_backend="memory"))

    def test_mid_run_rollups_match_snapshot(self):
        """Gold answers are right mid-campaign, at a live snapshot point."""
        config = CampaignConfig(scale=0.0, seed=4, loss_rate=0.0002,
                                ingest_mode="streaming", ingest_shards=2,
                                keep_raw_messages=False, rollups=True)
        campaign = DeploymentCampaign(config=config, profiles=self.PROFILES)
        checked = []

        def on_job(jobs_run: int) -> None:
            if jobs_run == 5:
                snapshot = campaign.snapshot()
                user_names = {user.uid: user.username
                              for user in campaign.cluster.users.all()}
                _assert_tables_match(campaign.tiered, snapshot, user_names)
                checked.append(len(snapshot))

        campaign.on_job = on_job
        result = campaign.run()
        (snapshot_size,) = checked
        assert 0 < snapshot_size < len(result.records)
        self._assert_result_matches(result)

    def test_invalid_store_backend_rejected(self):
        from repro.util.errors import CollectionError
        with pytest.raises(CollectionError):
            DeploymentCampaign(
                CampaignConfig(store_backend="parquet")).prepare()
