"""Tests for the SQLite message store and process records."""

import pytest

from repro.collector.records import InfoType, Layer
from repro.db.store import MessageStore, ProcessRecord
from repro.transport.messages import UDPMessage


def _message(info_type: InfoType = InfoType.PROCINFO, pid: int = 1,
             content: str = "x") -> UDPMessage:
    return UDPMessage(jobid="10", stepid="0", pid=pid, path_hash="f" * 32, host="n1",
                      time=500, layer=Layer.SELF, info_type=info_type, content=content)


class TestMessageStorage:
    def test_insert_and_count(self):
        store = MessageStore()
        store.insert(_message())
        assert store.message_count() == 1

    def test_insert_many(self):
        store = MessageStore()
        assert store.insert_many([_message(pid=i) for i in range(10)]) == 10
        assert store.message_count() == 10

    def test_iter_messages_ordering(self):
        store = MessageStore()
        store.insert_many([_message(InfoType.OBJECTS, pid=2), _message(InfoType.FILEMETA, pid=1)])
        rows = list(store.iter_messages())
        assert rows[0][2] == 1 and rows[1][2] == 2

    def test_clear_messages(self):
        store = MessageStore()
        store.insert(_message())
        store.clear_messages()
        assert store.message_count() == 0

    def test_file_backed_store(self, tmp_path):
        path = str(tmp_path / "siren.db")
        store = MessageStore(path)
        store.insert(_message())
        store.close()
        reopened = MessageStore(path)
        assert reopened.message_count() == 1
        reopened.close()

    def test_context_manager(self):
        with MessageStore() as store:
            store.insert(_message())
            assert store.message_count() == 1

    def test_in_memory_store_trades_durability_for_speed(self):
        store = MessageStore()
        (journal_mode,) = store.connection.execute("PRAGMA journal_mode").fetchone()
        (synchronous,) = store.connection.execute("PRAGMA synchronous").fetchone()
        assert journal_mode == "memory"
        assert synchronous == 0  # OFF

    def test_on_disk_store_is_crash_safe(self, tmp_path):
        store = MessageStore(str(tmp_path / "siren.db"))
        (journal_mode,) = store.connection.execute("PRAGMA journal_mode").fetchone()
        (synchronous,) = store.connection.execute("PRAGMA synchronous").fetchone()
        assert journal_mode == "wal"
        assert synchronous == 1  # NORMAL
        store.close()

    def test_iter_messages_order_is_index_backed(self):
        store = MessageStore()
        store.insert_many([_message(pid=pid) for pid in range(5)])
        plan = " ".join(row[3] for row in store.connection.execute(
            "EXPLAIN QUERY PLAN SELECT jobid, stepid, pid, hash, host, time, layer,"
            " type, chunk_index, chunk_total, content FROM messages"
            " ORDER BY jobid, stepid, pid, hash, time, type, chunk_index"))
        assert "idx_messages_consolidation_order" in plan
        assert "USE TEMP B-TREE" not in plan


class TestProcessRecords:
    def _record(self) -> ProcessRecord:
        return ProcessRecord(
            jobid="10", stepid="0", pid=5, hash="f" * 32, host="n1", time=100,
            uid=1000, executable="/project/p/u/icon-model/bin-x/icon", category="user",
            objects="/lib64/libc.so.6\n/lib64/libm.so.6",
            compilers="GCC: (SUSE Linux) 12.3.0;clang version 17.0.1 (Cray PE 24.03)",
            modules="siren/0.1:cce/17.0.1",
            python_packages="numpy,heapq",
        )

    def test_insert_and_load(self):
        store = MessageStore()
        store.insert_processes([self._record()])
        assert store.process_count() == 1
        loaded = store.load_processes()[0]
        assert loaded.executable_name == "icon"
        assert loaded.category == "user"

    def test_load_processes_since_is_a_monotonic_cursor(self):
        store = MessageStore()

        def record(pid: int) -> ProcessRecord:
            return ProcessRecord(jobid="1", stepid="0", pid=pid, hash="a" * 32,
                                 host="n1", time=100, executable=f"/bin/x{pid}")

        store.insert_processes_if_absent([record(1), record(2)])
        first, cursor = store.load_processes_since(0)
        assert [r.pid for r in first] == [1, 2]
        # nothing new: same cursor back, no records
        again, same_cursor = store.load_processes_since(cursor)
        assert again == [] and same_cursor == cursor
        store.insert_processes_if_absent([record(3)])
        # a re-offered key is ignored by the first-close-wins insert, so it
        # never reappears in the delta stream
        store.insert_processes_if_absent([record(2)])
        delta, new_cursor = store.load_processes_since(cursor)
        assert [r.pid for r in delta] == [3]
        assert new_cursor > cursor
        # the cursor stream partitions exactly the full record set
        assert {r.pid for r in first + delta} == {r.pid for r in store.load_processes()}

    def test_list_properties(self):
        record = self._record()
        assert record.object_list == ["/lib64/libc.so.6", "/lib64/libm.so.6"]
        assert len(record.compiler_list) == 2
        assert record.module_list == ["siren/0.1", "cce/17.0.1"]
        assert record.python_package_list == ["numpy", "heapq"]

    def test_empty_lists(self):
        record = ProcessRecord(jobid="1", stepid="0", pid=1, hash="", host="", time=0)
        assert record.object_list == []
        assert record.compiler_list == []
        assert record.module_list == []
        assert record.python_package_list == []

    def test_roundtrip_preserves_all_fields(self):
        store = MessageStore()
        record = self._record()
        store.insert_processes([record])
        loaded = store.load_processes()[0]
        assert loaded.objects == record.objects
        assert loaded.compilers == record.compilers
        assert loaded.uid == 1000
        assert loaded.incomplete == 0

    def test_upsert_replaces_by_process_key(self):
        store = MessageStore()
        first = self._record()
        store.insert_or_replace_processes([first])
        updated = self._record()
        updated.modules = "siren/0.1"
        updated.incomplete = 1
        store.insert_or_replace_processes([updated])
        assert store.process_count() == 1
        loaded = store.load_processes()[0]
        assert loaded.modules == "siren/0.1"
        assert loaded.incomplete == 1

    def test_insert_if_absent_keeps_existing_row(self):
        store = MessageStore()
        first = self._record()
        assert store.insert_processes_if_absent([first]) == 1
        resurrected = self._record()
        resurrected.modules = ""
        resurrected.incomplete = 1
        assert store.insert_processes_if_absent([resurrected]) == 0
        loaded = store.load_processes()[0]
        assert loaded.modules == first.modules
        assert loaded.incomplete == 0

    def test_upsert_keeps_distinct_keys_separate(self):
        store = MessageStore()
        first = self._record()
        other = self._record()
        other.hash = "e" * 32  # exec-chain sibling: same pid/time, new image
        store.insert_or_replace_processes([first, other])
        assert store.process_count() == 2

    def test_reconsolidation_is_idempotent(self):
        store = MessageStore()
        record = self._record()
        store.insert_processes([record])
        store.insert_processes([record])
        assert store.process_count() == 1

    def test_legacy_store_with_duplicate_rows_migrates(self, tmp_path):
        """Pre-upsert stores could hold duplicate process rows; opening one
        must dedup (keeping the newest row) instead of failing to build the
        unique index."""
        path = str(tmp_path / "legacy.db")
        store = MessageStore(path)
        store.connection.execute("DROP INDEX ux_processes_key")
        store.insert_processes([self._record()])
        columns = ", ".join(name for name in self._record().__dataclass_fields__)
        with store.connection:
            store.connection.execute(
                f"INSERT INTO processes ({columns}) SELECT {columns} FROM processes")
        assert store.process_count() == 2
        store.close()
        reopened = MessageStore(path)  # must not raise IntegrityError
        assert reopened.process_count() == 1
        reopened.close()
