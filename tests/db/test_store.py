"""Tests for the SQLite message store and process records."""

import pytest

from repro.collector.records import InfoType, Layer
from repro.db.store import MessageStore, ProcessRecord
from repro.transport.messages import UDPMessage


def _message(info_type: InfoType = InfoType.PROCINFO, pid: int = 1,
             content: str = "x") -> UDPMessage:
    return UDPMessage(jobid="10", stepid="0", pid=pid, path_hash="f" * 32, host="n1",
                      time=500, layer=Layer.SELF, info_type=info_type, content=content)


class TestMessageStorage:
    def test_insert_and_count(self):
        store = MessageStore()
        store.insert(_message())
        assert store.message_count() == 1

    def test_insert_many(self):
        store = MessageStore()
        assert store.insert_many([_message(pid=i) for i in range(10)]) == 10
        assert store.message_count() == 10

    def test_iter_messages_ordering(self):
        store = MessageStore()
        store.insert_many([_message(InfoType.OBJECTS, pid=2), _message(InfoType.FILEMETA, pid=1)])
        rows = list(store.iter_messages())
        assert rows[0][2] == 1 and rows[1][2] == 2

    def test_clear_messages(self):
        store = MessageStore()
        store.insert(_message())
        store.clear_messages()
        assert store.message_count() == 0

    def test_file_backed_store(self, tmp_path):
        path = str(tmp_path / "siren.db")
        store = MessageStore(path)
        store.insert(_message())
        store.close()
        reopened = MessageStore(path)
        assert reopened.message_count() == 1
        reopened.close()

    def test_context_manager(self):
        with MessageStore() as store:
            store.insert(_message())
            assert store.message_count() == 1


class TestProcessRecords:
    def _record(self) -> ProcessRecord:
        return ProcessRecord(
            jobid="10", stepid="0", pid=5, hash="f" * 32, host="n1", time=100,
            uid=1000, executable="/project/p/u/icon-model/bin-x/icon", category="user",
            objects="/lib64/libc.so.6\n/lib64/libm.so.6",
            compilers="GCC: (SUSE Linux) 12.3.0;clang version 17.0.1 (Cray PE 24.03)",
            modules="siren/0.1:cce/17.0.1",
            python_packages="numpy,heapq",
        )

    def test_insert_and_load(self):
        store = MessageStore()
        store.insert_processes([self._record()])
        assert store.process_count() == 1
        loaded = store.load_processes()[0]
        assert loaded.executable_name == "icon"
        assert loaded.category == "user"

    def test_list_properties(self):
        record = self._record()
        assert record.object_list == ["/lib64/libc.so.6", "/lib64/libm.so.6"]
        assert len(record.compiler_list) == 2
        assert record.module_list == ["siren/0.1", "cce/17.0.1"]
        assert record.python_package_list == ["numpy", "heapq"]

    def test_empty_lists(self):
        record = ProcessRecord(jobid="1", stepid="0", pid=1, hash="", host="", time=0)
        assert record.object_list == []
        assert record.compiler_list == []
        assert record.module_list == []
        assert record.python_package_list == []

    def test_roundtrip_preserves_all_fields(self):
        store = MessageStore()
        record = self._record()
        store.insert_processes([record])
        loaded = store.load_processes()[0]
        assert loaded.objects == record.objects
        assert loaded.compilers == record.compilers
        assert loaded.uid == 1000
        assert loaded.incomplete == 0
