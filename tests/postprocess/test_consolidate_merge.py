"""Tests for message consolidation and Python package extraction."""

from repro.collector.records import InfoType, Layer, format_keyvalues
from repro.db.store import MessageStore
from repro.hpcsim.memmap import build_memory_map, render_memory_map
from repro.postprocess.consolidate import Consolidator, consolidate_store
from repro.postprocess.python_merge import extract_python_packages, package_from_mapped_path
from repro.transport.messages import UDPMessage


def _msg(info_type: InfoType, content: str, *, layer: Layer = Layer.SELF, pid: int = 10,
         path_hash: str = "a" * 32, chunk_index: int = 0, chunk_total: int = 1,
         time: int = 100) -> UDPMessage:
    return UDPMessage(jobid="7", stepid="0", pid=pid, path_hash=path_hash, host="n1",
                      time=time, layer=layer, info_type=info_type, content=content,
                      chunk_index=chunk_index, chunk_total=chunk_total)


def _procinfo(exe: str, category: str, pid: int = 10, path_hash: str = "a" * 32) -> UDPMessage:
    return _msg(InfoType.PROCINFO,
                format_keyvalues({"pid": pid, "ppid": 1, "uid": 1000, "gid": 1000,
                                  "exe": exe, "category": category}),
                pid=pid, path_hash=path_hash)


class TestPackageFromMappedPath:
    def test_stdlib_module(self):
        path = "/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310-x86_64-linux-gnu.so"
        assert package_from_mapped_path(path) == "heapq"

    def test_site_package(self):
        path = "/usr/lib64/python3.10/site-packages/numpy/core/_multiarray_umath.cpython-310.so"
        assert package_from_mapped_path(path) == "numpy"

    def test_site_package_flat_extension(self):
        path = "/usr/lib64/python3.11/site-packages/_yaml.cpython-311.so"
        assert package_from_mapped_path(path) == "yaml"

    def test_unrelated_path(self):
        assert package_from_mapped_path("/lib64/libc.so.6") is None
        assert package_from_mapped_path("/usr/bin/python3.10") is None

    def test_extract_from_maps_text(self):
        regions = build_memory_map(
            "/usr/bin/python3.10", 4096, 1,
            [("/lib64/libc.so.6", 100, 2)],
            [("/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310.so", 10, 3),
             ("/usr/lib64/python3.10/site-packages/numpy/core/_multiarray_umath.cpython-310.so",
              10, 4)],
        )
        packages = extract_python_packages(render_memory_map(regions))
        assert packages == ["heapq", "numpy"]


class TestConsolidation:
    def test_basic_record_fields(self):
        store = MessageStore()
        store.insert_many([
            _procinfo("/project/p/u/lmp", "user"),
            _msg(InfoType.FILEMETA, format_keyvalues({"inode": 5, "size": 100})),
            _msg(InfoType.OBJECTS, "/lib64/libc.so.6\n/lib64/libm.so.6"),
            _msg(InfoType.OBJECTS_H, "3:abc:de"),
            _msg(InfoType.FILE_H, "96:xyz:uv"),
        ])
        records = consolidate_store(store)
        assert len(records) == 1
        record = records[0]
        assert record.executable == "/project/p/u/lmp"
        assert record.category == "user"
        assert record.uid == 1000
        assert record.object_list == ["/lib64/libc.so.6", "/lib64/libm.so.6"]
        assert record.file_h == "96:xyz:uv"
        assert store.process_count() == 1

    def test_chunked_content_reassembled(self):
        store = MessageStore()
        store.insert_many([
            _procinfo("/usr/bin/bash", "system"),
            _msg(InfoType.FILEMETA, "inode=1"),
            _msg(InfoType.OBJECTS, "part-one|", chunk_index=0, chunk_total=3),
            _msg(InfoType.OBJECTS, "part-two|", chunk_index=1, chunk_total=3),
            _msg(InfoType.OBJECTS, "part-three", chunk_index=2, chunk_total=3),
        ])
        record = consolidate_store(store)[0]
        assert record.objects == "part-one|part-two|part-three"
        assert record.incomplete == 0

    def test_missing_chunk_marks_incomplete(self):
        store = MessageStore()
        store.insert_many([
            _procinfo("/usr/bin/bash", "system"),
            _msg(InfoType.FILEMETA, "inode=1"),
            _msg(InfoType.OBJECTS, "part-one|", chunk_index=0, chunk_total=3),
            _msg(InfoType.OBJECTS, "part-three", chunk_index=2, chunk_total=3),
        ])
        consolidator = Consolidator(store)
        record = consolidator.run()[0]
        assert record.incomplete == 1
        assert consolidator.incomplete_records == 1

    def test_missing_expected_type_marks_incomplete(self):
        store = MessageStore()
        store.insert_many([
            _procinfo("/usr/bin/bash", "system"),
            _msg(InfoType.FILEMETA, "inode=1"),
            # OBJECTS expected for system executables but entirely lost.
        ])
        assert consolidate_store(store)[0].incomplete == 1

    def test_exec_chain_distinguished_by_path_hash(self):
        """Same PID + timestamp but different executables stay separate records."""
        store = MessageStore()
        store.insert_many([
            _procinfo("/usr/bin/bash", "system", pid=42, path_hash="b" * 32),
            _msg(InfoType.FILEMETA, "inode=1", pid=42, path_hash="b" * 32),
            _msg(InfoType.OBJECTS, "libc", pid=42, path_hash="b" * 32),
            _procinfo("/project/p/u/lmp", "user", pid=42, path_hash="c" * 32),
            _msg(InfoType.FILEMETA, "inode=2", pid=42, path_hash="c" * 32),
        ])
        records = consolidate_store(store)
        assert len(records) == 2
        assert {record.executable for record in records} == {"/usr/bin/bash", "/project/p/u/lmp"}

    def test_script_layer_merged_into_interpreter_row(self):
        store = MessageStore()
        maps_text = render_memory_map(build_memory_map(
            "/usr/bin/python3.10", 4096, 1, [],
            [("/usr/lib64/python3.10/lib-dynload/_heapq.cpython-310.so", 10, 3)]))
        store.insert_many([
            _procinfo("/usr/bin/python3.10", "python"),
            _msg(InfoType.FILEMETA, "inode=1"),
            _msg(InfoType.OBJECTS, "/lib64/libc.so.6"),
            _msg(InfoType.MAPS, maps_text),
            _msg(InfoType.PROCINFO, format_keyvalues({"script": "/users/a/run.py"}),
                 layer=Layer.SCRIPT),
            _msg(InfoType.FILEMETA, "inode=9|size=40", layer=Layer.SCRIPT),
            _msg(InfoType.FILE_H, "3:script:hash", layer=Layer.SCRIPT),
        ])
        records = consolidate_store(store)
        assert len(records) == 1
        record = records[0]
        assert record.script_path == "/users/a/run.py"
        assert record.script_h == "3:script:hash"
        assert record.python_packages == "heapq"

    def test_clear_messages_after_consolidation(self):
        store = MessageStore()
        store.insert_many([_procinfo("/usr/bin/ls", "system"),
                           _msg(InfoType.FILEMETA, "inode=1"),
                           _msg(InfoType.OBJECTS, "libc")])
        consolidate_store(store, clear_messages=True)
        assert store.message_count() == 0
        assert store.process_count() == 1

    def test_multiple_processes_sorted(self):
        store = MessageStore()
        for pid in (30, 20):
            store.insert_many([
                _procinfo("/usr/bin/ls", "system", pid=pid),
                _msg(InfoType.FILEMETA, "inode=1", pid=pid),
                _msg(InfoType.OBJECTS, "libc", pid=pid),
            ])
        records = consolidate_store(store)
        assert [record.pid for record in records] == [20, 30]
