"""Tests for process classification and the Table 1 collection policy."""

import pytest

from repro.collector.classify import (
    ExecutableCategory,
    classify_executable,
    classify_process,
    extract_script_path,
    is_python_interpreter,
)
from repro.collector.policy import DEFAULT_POLICY, FULL_POLICY, CollectionPolicy, ScopePolicy


class TestClassification:
    @pytest.mark.parametrize("path", ["/usr/bin/bash", "/usr/bin/srun", "/bin/ls",
                                      "/opt/cray/pe/bin/cc"])
    def test_system(self, path):
        assert classify_executable(path) is ExecutableCategory.SYSTEM

    @pytest.mark.parametrize("path", ["/project/p/u/lammps/bin/lmp", "/users/alice/a.out",
                                      "/scratch/p/model.x", "/appl/local/tool/bin/x"])
    def test_user(self, path):
        assert classify_executable(path) is ExecutableCategory.USER

    @pytest.mark.parametrize("path", ["/usr/bin/python3.10", "/usr/bin/python3",
                                      "/usr/bin/python", "/opt/python/3.11.5/bin/python3.11"])
    def test_python_in_system_dir(self, path):
        assert classify_executable(path) is ExecutableCategory.PYTHON

    def test_python_in_user_dir_counts_as_user(self):
        """A user-installed interpreter (e.g. miniconda) is a USER executable."""
        assert classify_executable("/project/p/u/miniconda3/bin/python3.10") \
            is ExecutableCategory.USER

    def test_python_lookalike_not_interpreter(self):
        assert not is_python_interpreter("/usr/bin/python-config")
        assert not is_python_interpreter("/usr/bin/pythonista2")
        assert is_python_interpreter("/usr/bin/python3.6")

    def test_classify_process_ignores_argv(self):
        assert classify_process("/usr/bin/bash", ("/usr/bin/bash", "script.py")) \
            is ExecutableCategory.SYSTEM


class TestExtractScriptPath:
    def test_simple_invocation(self):
        argv = ("/usr/bin/python3.10", "/users/a/run.py")
        assert extract_script_path(argv) == "/users/a/run.py"

    def test_skips_options(self):
        argv = ("/usr/bin/python3.10", "-u", "-X", "dev", "/users/a/run.py", "--arg")
        assert extract_script_path(argv) == "/users/a/run.py"

    def test_minus_c_has_no_script(self):
        assert extract_script_path(("/usr/bin/python3", "-c", "print(1)")) is None

    def test_module_invocation_has_no_script(self):
        assert extract_script_path(("/usr/bin/python3", "-m", "json.tool")) is None

    def test_no_arguments(self):
        assert extract_script_path(("/usr/bin/python3",)) is None


class TestDefaultPolicy:
    """The default policy must match Table 1 of the paper exactly."""

    def test_system_scope(self):
        scope = DEFAULT_POLICY.system
        assert scope.file_metadata and scope.libraries
        assert not (scope.modules or scope.compilers or scope.memory_map or scope.file_hash
                    or scope.strings_hash or scope.symbols_hash)

    def test_user_scope_collects_everything(self):
        scope = DEFAULT_POLICY.user
        assert all([scope.file_metadata, scope.libraries, scope.modules, scope.compilers,
                    scope.memory_map, scope.file_hash, scope.strings_hash, scope.symbols_hash])

    def test_python_interpreter_scope(self):
        scope = DEFAULT_POLICY.python_interpreter
        assert scope.file_metadata and scope.libraries and scope.memory_map
        assert not (scope.modules or scope.compilers or scope.file_hash
                    or scope.strings_hash or scope.symbols_hash)

    def test_python_script_scope(self):
        scope = DEFAULT_POLICY.python_script
        assert scope.file_metadata and scope.file_hash
        assert not (scope.libraries or scope.modules or scope.compilers or scope.memory_map
                    or scope.strings_hash or scope.symbols_hash)

    def test_for_category_dispatch(self):
        assert DEFAULT_POLICY.for_category(ExecutableCategory.SYSTEM) is DEFAULT_POLICY.system
        assert DEFAULT_POLICY.for_category(ExecutableCategory.USER) is DEFAULT_POLICY.user
        assert DEFAULT_POLICY.for_category(ExecutableCategory.PYTHON) \
            is DEFAULT_POLICY.python_interpreter

    def test_rank_zero_only(self):
        assert DEFAULT_POLICY.should_collect_rank("0")
        assert DEFAULT_POLICY.should_collect_rank(0)
        assert not DEFAULT_POLICY.should_collect_rank("3")
        assert DEFAULT_POLICY.should_collect_rank("")      # outside a Slurm step
        assert DEFAULT_POLICY.should_collect_rank(None)

    def test_full_policy_collects_all_ranks(self):
        assert FULL_POLICY.should_collect_rank("7")
        assert FULL_POLICY.system.file_hash

    def test_custom_policy(self):
        policy = CollectionPolicy(rank_zero_only=False,
                                  system=ScopePolicy(file_metadata=False))
        assert policy.should_collect_rank("9")
        assert not policy.for_category(ExecutableCategory.SYSTEM).file_metadata
