"""Tests for the artifact hasher and the SIREN collector hook."""

import pytest

from repro.collector.classify import ExecutableCategory
from repro.collector.fuzzy import ArtifactHasher
from repro.collector.hooks import SirenCollector
from repro.collector.policy import CollectionPolicy, ScopePolicy
from repro.collector.records import InfoType, Layer
from repro.db.store import MessageStore
from repro.hashing.ssdeep import compare
from repro.hpcsim.slurm import JobScript, ProcessSpec, StepSpec
from repro.transport.channel import InMemoryChannel
from repro.transport.receiver import MessageReceiver
from repro.transport.sender import UDPSender


class TestArtifactHasher:
    def test_executable_hashes_all_present(self, app_cluster):
        cluster, manifest = app_cluster
        hasher = ArtifactHasher(cluster.filesystem)
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        hashes = hasher.executable_hashes(icon.path)
        assert hashes.file_hash.count(":") == 2
        assert hashes.strings_hash.count(":") == 2
        assert hashes.symbols_hash.count(":") == 2

    def test_cache_hit_on_second_call(self, app_cluster):
        cluster, manifest = app_cluster
        hasher = ArtifactHasher(cluster.filesystem)
        path = manifest.find_executable("icon", "cray-r1", "alice").path
        hasher.executable_hashes(path)
        computed = hasher.hashes_computed
        hasher.executable_hashes(path)
        assert hasher.hashes_computed == computed
        assert hasher.cache_hits >= 1

    def test_cache_invalidated_on_mtime_change(self, app_cluster):
        cluster, manifest = app_cluster
        hasher = ArtifactHasher(cluster.filesystem)
        path = manifest.tool("bash")
        first = hasher.executable_hashes(path)
        cluster.filesystem.advance_clock(10)
        cluster.filesystem.add_file(path, cluster.filesystem.read(path) + b"\x00appended",
                                    executable=True)
        second = hasher.executable_hashes(path)
        assert first.file_hash != second.file_hash

    def test_cache_can_be_disabled(self, app_cluster):
        cluster, manifest = app_cluster
        hasher = ArtifactHasher(cluster.filesystem, cache_enabled=False)
        path = manifest.tool("bash")
        hasher.executable_hashes(path)
        hasher.executable_hashes(path)
        assert hasher.hashes_computed == 2

    def test_list_hash_memoised(self, app_cluster):
        cluster, _ = app_cluster
        hasher = ArtifactHasher(cluster.filesystem)
        first = hasher.list_hash(["/lib64/libc.so.6", "/lib64/libm.so.6"])
        second = hasher.list_hash("/lib64/libc.so.6\n/lib64/libm.so.6")
        assert first == second
        assert hasher.cache_hits >= 1

    def test_similar_symbol_tables_similar_hashes(self, app_cluster):
        cluster, manifest = app_cluster
        hasher = ArtifactHasher(cluster.filesystem)
        r1 = manifest.find_executable("icon", "cray-r1", "alice").path
        r2 = manifest.find_executable("icon", "cray-r2", "alice").path
        h1 = hasher.executable_hashes(r1)
        h2 = hasher.executable_hashes(r2)
        assert compare(h1.symbols_hash, h2.symbols_hash) >= 90

    def test_script_hash(self, app_cluster):
        cluster, _ = app_cluster
        cluster.filesystem.add_file("/users/alice/s.py", b"import numpy\nprint(42)\n" * 20)
        hasher = ArtifactHasher(cluster.filesystem)
        assert hasher.script_hash("/users/alice/s.py").count(":") == 2
        hasher.script_hash("/users/alice/s.py")
        assert hasher.cache_hits >= 1

    def test_clear_cache(self, app_cluster):
        cluster, manifest = app_cluster
        hasher = ArtifactHasher(cluster.filesystem)
        hasher.executable_hashes(manifest.tool("bash"))
        hasher.clear_cache()
        hasher.executable_hashes(manifest.tool("bash"))
        assert hasher.hashes_computed == 2


class TestScriptExecutableCacheSeparation:
    """Regression: a path first hashed as a script must still yield full
    executable hashes -- the seed stored ``ExecutableHashes(digest, "", "")``
    under the same key that ``executable_hashes`` read back."""

    def test_executable_after_script_has_strings_and_symbols(self, app_cluster):
        cluster, manifest = app_cluster
        path = manifest.find_executable("icon", "cray-r1", "alice").path
        hasher = ArtifactHasher(cluster.filesystem)
        script_digest = hasher.script_hash(path)
        hashes = hasher.executable_hashes(path)
        assert hashes.file_hash == script_digest
        assert hashes.strings_hash.count(":") == 2 and hashes.strings_hash != "3::"
        assert hashes.symbols_hash.count(":") == 2 and hashes.symbols_hash != "3::"

    def test_script_after_executable_reuses_file_hash(self, app_cluster):
        cluster, manifest = app_cluster
        path = manifest.find_executable("icon", "cray-r1", "alice").path
        hasher = ArtifactHasher(cluster.filesystem)
        hashes = hasher.executable_hashes(path)
        computed = hasher.hashes_computed
        assert hasher.script_hash(path) == hashes.file_hash
        assert hasher.hashes_computed == computed  # served from the content tier


class TestContentAddressedCache:
    def test_identical_content_under_different_paths_hashes_once(self, app_cluster):
        cluster, _ = app_cluster
        content = b"#!/bin/payload\n" + bytes(range(256)) * 40
        cluster.filesystem.add_file("/users/alice/tool", content, executable=True)
        cluster.filesystem.advance_clock(100)
        cluster.filesystem.add_file("/users/bob/a.out", content, executable=True)
        hasher = ArtifactHasher(cluster.filesystem)
        first = hasher.executable_hashes("/users/alice/tool")
        second = hasher.executable_hashes("/users/bob/a.out")
        assert first == second
        assert hasher.hashes_computed == 1
        assert hasher.content_cache_hits == 1

    def test_mtime_change_with_same_content_is_a_content_hit(self, app_cluster):
        cluster, _ = app_cluster
        content = b"stable bytes " * 500
        cluster.filesystem.add_file("/users/alice/stable", content, executable=True)
        hasher = ArtifactHasher(cluster.filesystem)
        hasher.executable_hashes("/users/alice/stable")
        cluster.filesystem.advance_clock(50)
        cluster.filesystem.add_file("/users/alice/stable", content, executable=True)
        hasher.executable_hashes("/users/alice/stable")
        assert hasher.hashes_computed == 1
        assert hasher.content_cache_hits == 1

    def test_content_cache_can_be_disabled(self, app_cluster):
        cluster, _ = app_cluster
        content = b"twice-hashed " * 300
        cluster.filesystem.add_file("/users/alice/one", content, executable=True)
        cluster.filesystem.add_file("/users/alice/two", content, executable=True)
        hasher = ArtifactHasher(cluster.filesystem, content_cache_enabled=False)
        hasher.executable_hashes("/users/alice/one")
        hasher.executable_hashes("/users/alice/two")
        assert hasher.hashes_computed == 2
        assert hasher.content_cache_hits == 0

    def test_script_content_shared_across_paths(self, app_cluster):
        cluster, _ = app_cluster
        body = b"import numpy\nprint('hi')\n" * 30
        cluster.filesystem.add_file("/users/alice/a.py", body)
        cluster.filesystem.add_file("/users/bob/copy.py", body)
        hasher = ArtifactHasher(cluster.filesystem)
        assert hasher.script_hash("/users/alice/a.py") == \
            hasher.script_hash("/users/bob/copy.py")
        assert hasher.hashes_computed == 1


class TestListCacheLRU:
    def test_oldest_entry_evicted_once_full(self, app_cluster):
        cluster, _ = app_cluster
        hasher = ArtifactHasher(cluster.filesystem, list_cache_limit=3)
        lists = [[f"/lib64/lib{index}.so"] for index in range(4)]
        for items in lists:
            hasher.list_hash(items)
        assert hasher.hashes_computed == 4
        assert len(hasher._list_cache) == 3
        # lists[0] was evicted: re-querying it recomputes...
        hasher.list_hash(lists[0])
        assert hasher.hashes_computed == 5
        # ...while the most recent entries are still served from cache.
        hasher.list_hash(lists[3])
        assert hasher.hashes_computed == 5
        assert hasher.cache_hits >= 1

    def test_recently_used_entry_survives_eviction(self, app_cluster):
        cluster, _ = app_cluster
        hasher = ArtifactHasher(cluster.filesystem, list_cache_limit=2)
        hasher.list_hash(["a"])
        hasher.list_hash(["b"])
        hasher.list_hash(["a"])         # refresh "a": now "b" is the LRU entry
        hasher.list_hash(["c"])         # evicts "b"
        computed = hasher.hashes_computed
        hasher.list_hash(["a"])
        assert hasher.hashes_computed == computed
        hasher.list_hash(["b"])
        assert hasher.hashes_computed == computed + 1

    def test_cache_never_exceeds_limit(self, app_cluster):
        cluster, _ = app_cluster
        hasher = ArtifactHasher(cluster.filesystem, list_cache_limit=5)
        for index in range(20):
            hasher.list_hash([f"/opt/item{index}"])
        assert len(hasher._list_cache) == 5


def _run_one(cluster, manifest, executable, *, ranks=1, modules=("siren",), argv=None,
             python_script=None, imported_packages=(), mapped_files=()):
    """Helper: run one process through a fresh collector and return its messages."""
    store = MessageStore()
    channel = InMemoryChannel()
    receiver = MessageReceiver(store)
    receiver.attach(channel)
    collector = SirenCollector(cluster.filesystem, UDPSender(channel), manifest.siren_library)
    cluster.register_preload_hook(collector)
    try:
        script = JobScript(name="t", modules=tuple(modules), steps=(
            StepSpec(processes=(ProcessSpec(executable=executable, ranks=ranks,
                                            argv=argv or (executable,),
                                            python_script=python_script,
                                            imported_packages=imported_packages,
                                            mapped_files=mapped_files),)),))
        cluster.run_job("alice", script)
    finally:
        cluster.runtime.unregister_hook(manifest.siren_library)
    receiver.flush()
    return collector, store


class TestSirenCollector:
    def test_user_executable_gets_full_treatment(self, app_cluster):
        cluster, manifest = app_cluster
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        collector, store = _run_one(cluster, manifest, icon.path,
                                    modules=("siren", *icon.required_modules))
        types = {row[7] for row in store.iter_messages()}
        for expected in (InfoType.PROCINFO, InfoType.FILEMETA, InfoType.OBJECTS,
                         InfoType.OBJECTS_H, InfoType.MODULES, InfoType.MODULES_H,
                         InfoType.COMPILERS, InfoType.COMPILERS_H, InfoType.MAPS,
                         InfoType.MAPS_H, InfoType.FILE_H, InfoType.STRINGS_H,
                         InfoType.SYMBOLS_H, InfoType.PROCEND):
            assert expected.value in types
        assert collector.processes_collected == 1

    def test_system_executable_is_not_hashed(self, app_cluster):
        cluster, manifest = app_cluster
        _, store = _run_one(cluster, manifest, manifest.tool("bash"))
        types = {row[7] for row in store.iter_messages()}
        assert InfoType.OBJECTS.value in types
        assert InfoType.FILE_H.value not in types
        assert InfoType.MODULES.value not in types
        assert InfoType.COMPILERS.value not in types

    def test_rank_zero_only(self, app_cluster):
        cluster, manifest = app_cluster
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        collector, _ = _run_one(cluster, manifest, icon.path, ranks=4,
                                modules=("siren", *icon.required_modules))
        assert collector.processes_collected == 1
        assert collector.processes_skipped == 3

    def test_no_collection_without_siren_module(self, app_cluster):
        cluster, manifest = app_cluster
        collector, store = _run_one(cluster, manifest, manifest.tool("bash"), modules=())
        assert collector.processes_collected == 0
        assert store.message_count() == 0

    def test_python_interpreter_script_layer(self, app_cluster):
        cluster, manifest = app_cluster
        script_path = "/users/alice/scripts/pytest_case.py"
        cluster.filesystem.add_file(script_path, b"import numpy\nimport heapq\n")
        interpreter = manifest.interpreter("python3.10")
        _, store = _run_one(cluster, manifest, interpreter,
                            argv=(interpreter, script_path), python_script=script_path)
        layers_types = {(row[6], row[7]) for row in store.iter_messages()}
        assert (Layer.SCRIPT.value, InfoType.FILE_H.value) in layers_types
        assert (Layer.SCRIPT.value, InfoType.FILEMETA.value) in layers_types
        assert (Layer.SELF.value, InfoType.MAPS.value) in layers_types
        # Interpreter itself is not fuzzy hashed under the default policy.
        assert (Layer.SELF.value, InfoType.FILE_H.value) not in layers_types

    def test_missing_script_fails_gracefully(self, app_cluster):
        cluster, manifest = app_cluster
        interpreter = manifest.interpreter("python3.10")
        collector, store = _run_one(cluster, manifest, interpreter,
                                    argv=(interpreter, "/users/alice/notthere.py"))
        assert collector.processes_collected == 1
        layers = {row[6] for row in store.iter_messages()}
        assert Layer.SCRIPT.value not in layers

    def test_custom_policy_restricts_collection(self, app_cluster):
        cluster, manifest = app_cluster
        policy = CollectionPolicy(user=ScopePolicy(file_metadata=True), rank_zero_only=True)
        store = MessageStore()
        channel = InMemoryChannel()
        MessageReceiver(store).attach(channel)
        receiver = MessageReceiver(store)
        receiver.attach(channel)
        collector = SirenCollector(cluster.filesystem, UDPSender(channel),
                                   manifest.siren_library, policy=policy)
        cluster.register_preload_hook(collector)
        try:
            icon = manifest.find_executable("icon", "cray-r1", "alice")
            script = JobScript(name="t", modules=("siren", *icon.required_modules),
                               steps=(StepSpec(processes=(ProcessSpec(executable=icon.path),)),))
            cluster.run_job("alice", script)
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)
        receiver.flush()
        types = {row[7] for row in store.iter_messages()}
        assert InfoType.FILE_H.value not in types
        assert InfoType.FILEMETA.value in types

    def test_header_fields_populated(self, app_cluster):
        cluster, manifest = app_cluster
        _, store = _run_one(cluster, manifest, manifest.tool("bash"))
        row = next(iter(store.iter_messages()))
        jobid, stepid, pid, path_hash, host, time = row[0], row[1], row[2], row[3], row[4], row[5]
        assert jobid and stepid == "0" and pid >= 1000
        assert len(path_hash) == 32
        assert host.startswith("nid")
        assert time > 0
