"""Shared fixtures for the test suite.

The expensive fixture is a small-scale deployment campaign (a few thousand
simulated processes); it is session-scoped so the analysis and integration
tests can all share one run.  Component tests build their own tiny clusters.
"""

from __future__ import annotations

import pytest

from repro.collector.hooks import SirenCollector
from repro.core import AnalysisPipeline, SirenConfig, SirenFramework
from repro.corpus.builder import CorpusBuilder, CorpusManifest
from repro.corpus.packages import ICON, LAMMPS
from repro.hpcsim.cluster import Cluster
from repro.util.rng import SeededRNG
from repro.workload import CampaignConfig, CampaignResult, DeploymentCampaign


@pytest.fixture(scope="session")
def campaign_result() -> CampaignResult:
    """One shared small-scale campaign run (deterministic)."""
    config = CampaignConfig(scale=0.004, seed=1, loss_rate=0.0002)
    return DeploymentCampaign(config=config).run()


@pytest.fixture(scope="session")
def pipeline(campaign_result: CampaignResult) -> AnalysisPipeline:
    """Analysis pipeline over the shared campaign."""
    return AnalysisPipeline(campaign_result.records, campaign_result.user_names)


@pytest.fixture(scope="session")
def campaign_records(campaign_result: CampaignResult):
    """Consolidated records of the shared campaign."""
    return campaign_result.records


@pytest.fixture()
def rng() -> SeededRNG:
    """A fresh deterministic RNG."""
    return SeededRNG(1234)


@pytest.fixture(scope="module")
def base_cluster() -> tuple[Cluster, CorpusManifest]:
    """A cluster with the base corpus (libraries, tools, Python, siren) installed."""
    cluster = Cluster()
    builder = CorpusBuilder(cluster)
    manifest = builder.install_base_system()
    return cluster, manifest


@pytest.fixture(scope="module")
def app_cluster() -> tuple[Cluster, CorpusManifest]:
    """A cluster with the base corpus plus ICON and LAMMPS installed for one user."""
    cluster = Cluster()
    builder = CorpusBuilder(cluster)
    manifest = builder.install_base_system()
    user = cluster.add_user("alice")
    builder.install_package(ICON, user)
    builder.install_package(LAMMPS, user)
    return cluster, manifest


@pytest.fixture()
def deployed_framework(app_cluster) -> tuple[Cluster, CorpusManifest, SirenFramework, SirenCollector]:
    """A SIREN framework deployed (fresh per test) on the shared app cluster."""
    cluster, manifest = app_cluster
    framework = SirenFramework(SirenConfig(loss_rate=0.0))
    collector = framework.deploy(cluster, siren_library_path=manifest.siren_library)
    yield cluster, manifest, framework, collector
    cluster.runtime.unregister_hook(manifest.siren_library)
