"""Tests for the virtual filesystem."""

import pytest

from repro.hpcsim.filesystem import (
    SYSTEM_DIRECTORIES,
    VirtualFilesystem,
    is_system_path,
    normalize_path,
)
from repro.util.errors import SimulationError


class TestSystemPathClassification:
    @pytest.mark.parametrize("path", ["/usr/bin/bash", "/lib/libc.so", "/opt/cray/pe/x",
                                      "/etc/passwd", "/var/log/messages", "/sbin/init"])
    def test_system_paths(self, path):
        assert is_system_path(path)

    @pytest.mark.parametrize("path", ["/project/p/user/lmp", "/users/alice/a.out",
                                      "/scratch/p/run/model.x", "/appl/local/tool"])
    def test_user_paths(self, path):
        assert not is_system_path(path)

    def test_all_paper_directories_covered(self):
        assert len(SYSTEM_DIRECTORIES) == 11


class TestNormalizePath:
    def test_collapses_duplicate_slashes(self):
        assert normalize_path("//usr//bin///bash") == "/usr/bin/bash"

    def test_rejects_relative(self):
        with pytest.raises(SimulationError):
            normalize_path("relative/path")


class TestVirtualFilesystem:
    def test_add_and_read(self):
        fs = VirtualFilesystem()
        fs.add_file("/usr/bin/tool", b"content", executable=True)
        assert fs.read("/usr/bin/tool") == b"content"
        assert fs.exists("/usr/bin/tool")
        assert "/usr/bin/tool" in fs

    def test_metadata_fields(self):
        fs = VirtualFilesystem()
        vfile = fs.add_file("/usr/bin/tool", b"12345", uid=7, gid=8, executable=True)
        meta = vfile.metadata
        assert meta.size == 5 and meta.uid == 7 and meta.gid == 8
        assert meta.mode & 0o111  # executable bits set
        assert meta.mtime == fs.clock

    def test_inode_allocation_unique(self):
        fs = VirtualFilesystem()
        a = fs.add_file("/a", b"x").metadata.inode
        b = fs.add_file("/b", b"x").metadata.inode
        assert a != b

    def test_replacement_keeps_inode_updates_ctime(self):
        fs = VirtualFilesystem()
        first = fs.add_file("/a", b"x")
        fs.advance_clock(100)
        second = fs.add_file("/a", b"longer content")
        assert second.metadata.inode == first.metadata.inode
        assert second.metadata.ctime == first.metadata.ctime + 100
        assert second.metadata.size == len(b"longer content")

    def test_missing_file_raises(self):
        with pytest.raises(SimulationError):
            VirtualFilesystem().read("/nope")

    def test_remove(self):
        fs = VirtualFilesystem()
        fs.add_file("/a", b"x")
        fs.remove("/a")
        assert not fs.exists("/a")
        with pytest.raises(SimulationError):
            fs.remove("/a")

    def test_clock_cannot_go_backwards(self):
        with pytest.raises(SimulationError):
            VirtualFilesystem().advance_clock(-1)

    def test_touch_atime(self):
        fs = VirtualFilesystem()
        fs.add_file("/a", b"x")
        fs.advance_clock(50)
        fs.touch_atime("/a")
        assert fs.stat("/a").atime == fs.clock

    def test_listdir_direct_children_only(self):
        fs = VirtualFilesystem()
        fs.add_file("/usr/bin/a", b"x")
        fs.add_file("/usr/bin/b", b"x")
        fs.add_file("/usr/bin/sub/c", b"x")
        assert fs.listdir("/usr/bin") == ["/usr/bin/a", "/usr/bin/b"]

    def test_glob_prefix(self):
        fs = VirtualFilesystem()
        fs.add_file("/opt/rocm/lib/librocblas.so", b"x")
        fs.add_file("/opt/cray/lib/libsci.so", b"x")
        assert fs.glob_prefix("/opt/rocm") == ["/opt/rocm/lib/librocblas.so"]

    def test_executables_listing(self):
        fs = VirtualFilesystem()
        fs.add_file("/usr/bin/tool", b"x", executable=True)
        fs.add_file("/etc/config", b"x")
        assert [f.path for f in fs.executables()] == ["/usr/bin/tool"]

    def test_file_name_and_directory(self):
        fs = VirtualFilesystem()
        vfile = fs.add_file("/project/x/bin/lmp", b"x")
        assert vfile.name == "lmp"
        assert vfile.directory == "/project/x/bin"

    def test_len(self):
        fs = VirtualFilesystem()
        fs.add_file("/a", b"")
        fs.add_file("/b", b"")
        assert len(fs) == 2
