"""Tests for the user registry and the module system."""

import pytest

from repro.hpcsim.modules import Module, ModuleSystem
from repro.hpcsim.users import UserRegistry
from repro.util.errors import SimulationError


class TestUserRegistry:
    def test_add_and_get(self):
        registry = UserRegistry()
        user = registry.add("alice")
        assert registry.get("alice") == user
        assert user.uid == registry.first_uid

    def test_idempotent_add(self):
        registry = UserRegistry()
        assert registry.add("alice") is registry.add("alice")
        assert len(registry) == 1

    def test_uids_increment(self):
        registry = UserRegistry()
        a = registry.add("a")
        b = registry.add("b")
        assert b.uid == a.uid + 1

    def test_unknown_user_raises(self):
        with pytest.raises(SimulationError):
            UserRegistry().get("nobody")

    def test_by_uid(self):
        registry = UserRegistry()
        user = registry.add("alice")
        assert registry.by_uid(user.uid) == user
        with pytest.raises(SimulationError):
            registry.by_uid(99999)

    def test_directories(self):
        user = UserRegistry().add("alice", project="project_123")
        assert user.home == "/users/alice"
        assert user.project_dir == "/project/project_123/alice"
        assert user.scratch_dir == "/scratch/project_123/alice"

    def test_anonymize_order(self):
        registry = UserRegistry()
        first = registry.add("zeta")
        second = registry.add("alpha")
        mapping = registry.anonymize()
        assert mapping[first.uid] == "user_1"
        assert mapping[second.uid] == "user_2"

    def test_contains(self):
        registry = UserRegistry()
        registry.add("alice")
        assert "alice" in registry and "bob" not in registry


class TestModuleSystem:
    def _system(self) -> ModuleSystem:
        system = ModuleSystem()
        system.register(Module(name="cce", version="17.0.1"))
        system.register(Module(name="PrgEnv-cray", version="8.5.0", requires=("cce",)))
        system.register(Module(name="rocm", version="6.0.3",
                               library_paths=("/opt/rocm-6.0.3/lib",)))
        system.register(Module(name="siren", version="0.1",
                               ld_preload=("/appl/local/siren/lib/siren.so",),
                               library_paths=("/appl/local/siren/lib",)))
        return system

    def test_loadedmodules_variable(self):
        env = self._system().load(["cce"])
        assert env["LOADEDMODULES"] == "cce/17.0.1"

    def test_dependencies_loaded_first(self):
        env = self._system().load(["PrgEnv-cray"])
        assert env["LOADEDMODULES"].split(":") == ["cce/17.0.1", "PrgEnv-cray/8.5.0"]

    def test_library_path_prepended(self):
        system = self._system()
        env = system.load(["rocm"], {"LD_LIBRARY_PATH": "/existing"})
        assert env["LD_LIBRARY_PATH"].split(":") == ["/opt/rocm-6.0.3/lib", "/existing"]

    def test_ld_preload_set(self):
        env = self._system().load(["siren"])
        assert env["LD_PRELOAD"] == "/appl/local/siren/lib/siren.so"

    def test_no_duplicate_loads(self):
        system = self._system()
        env = system.load(["cce"])
        env = system.load(["cce", "PrgEnv-cray"], env)
        assert env["LOADEDMODULES"].split(":").count("cce/17.0.1") == 1

    def test_full_name_lookup(self):
        assert self._system().get("cce/17.0.1").name == "cce"

    def test_unknown_module_raises(self):
        with pytest.raises(SimulationError):
            self._system().load(["does-not-exist"])

    def test_cycle_detection(self):
        system = ModuleSystem()
        system.register(Module(name="a", requires=("b",)))
        system.register(Module(name="b", requires=("a",)))
        with pytest.raises(SimulationError):
            system.load(["a"])

    def test_available_sorted(self):
        names = self._system().available()
        assert names == sorted(names)
        assert "siren/0.1" in names

    def test_original_environment_not_mutated(self):
        base = {"LOADEDMODULES": ""}
        self._system().load(["cce"], base)
        assert base == {"LOADEDMODULES": ""}
