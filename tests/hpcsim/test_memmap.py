"""Tests for the /proc/<pid>/maps simulation."""

from repro.hpcsim.memmap import (
    MemoryRegion,
    build_memory_map,
    parse_mapped_paths,
    render_memory_map,
)


class TestMemoryRegionRendering:
    def test_format_matches_proc_maps(self):
        region = MemoryRegion(0x400000, 0x401000, "r-xp", 0, "fd:01", 1234, "/usr/bin/bash")
        line = region.render()
        address_range, perms, offset, device, inode, path = line.split()
        assert "-" in address_range
        assert perms == "r-xp"
        assert device == "fd:01"
        assert inode == "1234"
        assert path == "/usr/bin/bash"


class TestBuildMemoryMap:
    def test_contains_executable_and_objects(self):
        regions = build_memory_map("/usr/bin/python3.10", 4096, 11,
                                   [("/lib64/libc.so.6", 2048, 12)],
                                   [("/usr/lib64/python3.10/lib-dynload/_heapq.so", 512, 13)])
        paths = {region.path for region in regions}
        assert "/usr/bin/python3.10" in paths
        assert "/lib64/libc.so.6" in paths
        assert "/usr/lib64/python3.10/lib-dynload/_heapq.so" in paths
        assert "[stack]" in paths and "[heap]" in paths and "[vdso]" in paths

    def test_two_regions_per_file(self):
        regions = build_memory_map("/usr/bin/x", 4096, 1, [("/lib64/libc.so.6", 100, 2)])
        libc = [r for r in regions if r.path == "/lib64/libc.so.6"]
        assert len(libc) == 2
        assert {r.permissions for r in libc} == {"r-xp", "rw-p"}

    def test_deterministic_addresses(self):
        a = build_memory_map("/usr/bin/x", 4096, 1, [("/lib64/libm.so.6", 100, 2)])
        b = build_memory_map("/usr/bin/x", 4096, 1, [("/lib64/libm.so.6", 100, 2)])
        assert render_memory_map(a) == render_memory_map(b)

    def test_executable_mapped_at_fixed_base(self):
        regions = build_memory_map("/usr/bin/x", 4096, 1, [])
        assert regions[0].start == 0x400000


class TestParseMappedPaths:
    def test_extracts_unique_file_paths(self):
        regions = build_memory_map("/usr/bin/x", 4096, 1,
                                   [("/lib64/libc.so.6", 100, 2), ("/lib64/libm.so.6", 100, 3)])
        paths = parse_mapped_paths(render_memory_map(regions))
        assert paths == ["/usr/bin/x", "/lib64/libc.so.6", "/lib64/libm.so.6"]

    def test_skips_pseudo_paths(self):
        regions = build_memory_map("/usr/bin/x", 4096, 1, [])
        paths = parse_mapped_paths(render_memory_map(regions))
        assert all(not path.startswith("[") for path in paths)

    def test_handles_garbage_lines(self):
        assert parse_mapped_paths("not a maps line\n\n") == []
