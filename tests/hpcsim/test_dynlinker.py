"""Tests for the dynamic-linker simulation."""

import pytest

from repro.elf.builder import ELFBuilder
from repro.elf.constants import ET_DYN, ET_EXEC
from repro.hpcsim.dynlinker import DynamicLinker, ensure_library_present
from repro.hpcsim.filesystem import VirtualFilesystem
from repro.util.errors import SimulationError


def _library(soname: str, needed: list[str] | None = None) -> bytes:
    builder = ELFBuilder(file_type=ET_DYN, soname=soname)
    builder.set_text_from_source(soname, size=256)
    builder.add_needed_many(needed or [])
    return builder.build()


def _executable(needed: list[str], dynamic: bool = True) -> bytes:
    builder = ELFBuilder(file_type=ET_EXEC)
    builder.set_text_from_source("exe", size=256)
    if dynamic:
        builder.add_needed_many(needed)
    return builder.build()


@pytest.fixture()
def environment() -> tuple[VirtualFilesystem, DynamicLinker]:
    fs = VirtualFilesystem()
    fs.add_file("/lib64/libc.so.6", _library("libc.so.6"), executable=True)
    fs.add_file("/lib64/libm.so.6", _library("libm.so.6"), executable=True)
    fs.add_file("/lib64/libtinfo.so.6", _library("libtinfo.so.6"), executable=True)
    fs.add_file("/appl/alt/libtinfo.so.6", _library("libtinfo.so.6", ["libm.so.6"]),
                executable=True)
    fs.add_file("/appl/local/siren/lib/siren.so", _library("siren.so"), executable=True)
    fs.add_file("/usr/bin/bash", _executable(["libc.so.6", "libtinfo.so.6"]), executable=True)
    fs.add_file("/usr/bin/static-tool", _executable([], dynamic=False), executable=True)
    return fs, DynamicLinker(fs)


class TestSearchPath:
    def test_default_paths_used(self, environment):
        _, linker = environment
        dirs = linker.search_directories({})
        assert "/lib64" in dirs

    def test_ld_library_path_first(self, environment):
        _, linker = environment
        dirs = linker.search_directories({"LD_LIBRARY_PATH": "/appl/alt:/other"})
        assert dirs[:2] == ["/appl/alt", "/other"]

    def test_resolve_soname(self, environment):
        _, linker = environment
        assert linker.resolve_soname("libc.so.6", ["/lib64"]) == "/lib64/libc.so.6"
        assert linker.resolve_soname("libzzz.so", ["/lib64"]) is None


class TestLinking:
    def test_basic_resolution(self, environment):
        _, linker = environment
        result = linker.link("/usr/bin/bash", {})
        assert "/lib64/libc.so.6" in result.loaded_objects
        assert "/lib64/libtinfo.so.6" in result.loaded_objects
        assert result.missing == ()
        assert not result.static

    def test_environment_changes_resolution(self, environment):
        """The Table 4 phenomenon: LD_LIBRARY_PATH swaps the libtinfo instance."""
        _, linker = environment
        default = linker.link("/usr/bin/bash", {})
        alt = linker.link("/usr/bin/bash", {"LD_LIBRARY_PATH": "/appl/alt"})
        assert "/lib64/libtinfo.so.6" in default.loaded_objects
        assert "/appl/alt/libtinfo.so.6" in alt.loaded_objects
        # The alternative libtinfo drags in libm transitively.
        assert "/lib64/libm.so.6" in alt.loaded_objects
        assert "/lib64/libm.so.6" not in default.loaded_objects

    def test_transitive_dependencies_resolved_once(self, environment):
        fs, linker = environment
        fs.add_file("/lib64/libdep.so.1", _library("libdep.so.1", ["libc.so.6"]),
                    executable=True)
        fs.add_file("/usr/bin/tool", _executable(["libdep.so.1", "libc.so.6"]), executable=True)
        linker.clear_cache()
        result = linker.link("/usr/bin/tool", {})
        assert result.loaded_objects.count("/lib64/libc.so.6") == 1

    def test_ld_preload_loaded_first(self, environment):
        _, linker = environment
        env = {"LD_PRELOAD": "/appl/local/siren/lib/siren.so"}
        result = linker.link("/usr/bin/bash", env)
        assert result.loaded_objects[0] == "/appl/local/siren/lib/siren.so"
        assert result.preloaded == ("/appl/local/siren/lib/siren.so",)
        assert result.siren_loaded

    def test_missing_preload_reported(self, environment):
        _, linker = environment
        result = linker.link("/usr/bin/bash", {"LD_PRELOAD": "/nowhere/siren.so"})
        assert "/nowhere/siren.so" in result.missing
        assert not result.siren_loaded

    def test_missing_needed_reported(self, environment):
        fs, linker = environment
        fs.add_file("/usr/bin/broken", _executable(["libmissing.so.1"]), executable=True)
        result = linker.link("/usr/bin/broken", {})
        assert "libmissing.so.1" in result.missing

    def test_static_executable(self, environment):
        _, linker = environment
        result = linker.link("/usr/bin/static-tool", {"LD_PRELOAD": "/appl/local/siren/lib/siren.so"})
        assert result.static
        assert result.loaded_objects == ()
        assert not result.siren_loaded

    def test_is_dynamic(self, environment):
        _, linker = environment
        assert linker.is_dynamic("/usr/bin/bash")
        assert not linker.is_dynamic("/usr/bin/static-tool")

    def test_script_counts_as_dynamic(self, environment):
        fs, linker = environment
        fs.add_file("/users/a/run.sh", b"#!/bin/bash\necho hi\n", executable=True)
        assert linker.is_dynamic("/users/a/run.sh")

    def test_missing_executable_raises(self, environment):
        _, linker = environment
        with pytest.raises(SimulationError):
            linker.link("/does/not/exist", {})

    def test_needed_cache_respects_mtime(self, environment):
        fs, linker = environment
        first = linker.link("/usr/bin/bash", {})
        # Replace bash with a binary that needs libm instead of libtinfo.
        fs.advance_clock(10)
        fs.add_file("/usr/bin/bash", _executable(["libc.so.6", "libm.so.6"]), executable=True)
        second = linker.link("/usr/bin/bash", {})
        assert "/lib64/libtinfo.so.6" in first.loaded_objects
        assert "/lib64/libm.so.6" in second.loaded_objects


class TestEnsureLibraryPresent:
    def test_present_passes(self, environment):
        fs, _ = environment
        ensure_library_present(fs, "/lib64/libc.so.6")

    def test_missing_raises(self, environment):
        fs, _ = environment
        with pytest.raises(SimulationError):
            ensure_library_present(fs, "/lib64/libzzz.so")
