"""Tests for the process runtime, the Slurm scheduler and the cluster facade."""

import pytest

from repro.elf.builder import ELFBuilder
from repro.elf.constants import ET_DYN, ET_EXEC
from repro.hpcsim.cluster import Cluster
from repro.hpcsim.dynlinker import DynamicLinker
from repro.hpcsim.filesystem import VirtualFilesystem
from repro.hpcsim.process import ProcessRuntime
from repro.hpcsim.slurm import JobScript, ProcessSpec, SlurmScheduler, StepSpec
from repro.util.errors import SimulationError


def _library(soname: str) -> bytes:
    return ELFBuilder(file_type=ET_DYN, soname=soname).set_text_from_source(soname, size=128).build()


def _executable(needed: list[str]) -> bytes:
    builder = ELFBuilder(file_type=ET_EXEC).set_text_from_source("exe", size=128)
    builder.add_needed_many(needed)
    return builder.build()


class RecordingHook:
    """Minimal PreloadHook capturing the contexts it sees."""

    def __init__(self, library_path: str, fail: bool = False) -> None:
        self.library_path = library_path
        self.started: list = []
        self.ended: list = []
        self.fail = fail

    def on_process_start(self, context) -> None:
        if self.fail:
            raise RuntimeError("collector bug")
        self.started.append(context)

    def on_process_end(self, context) -> None:
        if self.fail:
            raise RuntimeError("collector bug")
        self.ended.append(context)


@pytest.fixture()
def runtime_env():
    fs = VirtualFilesystem()
    fs.add_file("/lib64/libc.so.6", _library("libc.so.6"), executable=True)
    fs.add_file("/appl/siren/siren.so", _library("siren.so"), executable=True)
    fs.add_file("/usr/bin/tool", _executable(["libc.so.6"]), executable=True)
    runtime = ProcessRuntime(fs, DynamicLinker(fs))
    return fs, runtime


class TestProcessRuntime:
    def test_run_process_populates_context(self, runtime_env):
        fs, runtime = runtime_env
        context = runtime.run_process(
            executable="/usr/bin/tool", environment={"SLURM_JOB_ID": "1", "SLURM_PROCID": "0"},
            uid=10, gid=10, hostname="nid000001", duration=5,
        )
        assert context.pid >= 1000
        assert context.executable == "/usr/bin/tool"
        assert context.slurm_job_id == "1"
        assert context.end_time == context.start_time + 5
        assert "/lib64/libc.so.6" in context.loaded_objects
        assert "/usr/bin/tool" in context.maps_text()

    def test_pids_increment(self, runtime_env):
        _, runtime = runtime_env
        pids = {runtime.allocate_pid() for _ in range(10)}
        assert len(pids) == 10

    def test_hook_invoked_only_when_preloaded(self, runtime_env):
        fs, runtime = runtime_env
        hook = RecordingHook("/appl/siren/siren.so")
        runtime.register_hook(hook)
        runtime.run_process(executable="/usr/bin/tool", environment={},
                            uid=1, gid=1, hostname="n1")
        assert hook.started == []
        runtime.run_process(executable="/usr/bin/tool",
                            environment={"LD_PRELOAD": "/appl/siren/siren.so"},
                            uid=1, gid=1, hostname="n1")
        assert len(hook.started) == 1 and len(hook.ended) == 1

    def test_hook_failure_does_not_break_process(self, runtime_env):
        fs, runtime = runtime_env
        runtime.register_hook(RecordingHook("/appl/siren/siren.so", fail=True))
        context = runtime.run_process(
            executable="/usr/bin/tool",
            environment={"LD_PRELOAD": "/appl/siren/siren.so"},
            uid=1, gid=1, hostname="n1",
        )
        assert context.exit_code == 0
        assert runtime.hook_failures == 2  # constructor + destructor

    def test_duplicate_hook_registration_rejected(self, runtime_env):
        _, runtime = runtime_env
        runtime.register_hook(RecordingHook("/appl/siren/siren.so"))
        with pytest.raises(SimulationError):
            runtime.register_hook(RecordingHook("/appl/siren/siren.so"))

    def test_unregister_hook(self, runtime_env):
        _, runtime = runtime_env
        hook = RecordingHook("/appl/siren/siren.so")
        runtime.register_hook(hook)
        runtime.unregister_hook("/appl/siren/siren.so")
        runtime.run_process(executable="/usr/bin/tool",
                            environment={"LD_PRELOAD": "/appl/siren/siren.so"},
                            uid=1, gid=1, hostname="n1")
        assert hook.started == []

    def test_missing_executable_raises(self, runtime_env):
        _, runtime = runtime_env
        with pytest.raises(SimulationError):
            runtime.run_process(executable="/usr/bin/missing", environment={},
                                uid=1, gid=1, hostname="n1")


class TestSlurmSpecs:
    def test_process_spec_validation(self):
        with pytest.raises(SimulationError):
            ProcessSpec(executable="/x", ranks=0)
        with pytest.raises(SimulationError):
            ProcessSpec(executable="/x", count=0)

    def test_total_processes(self):
        spec = ProcessSpec(executable="/x", ranks=4, count=3)
        assert spec.total_processes == 12
        step = StepSpec(processes=(spec, ProcessSpec(executable="/y")))
        assert step.total_processes == 13
        script = JobScript(name="j", steps=(step,))
        assert script.total_processes == 13


class TestSlurmScheduler:
    def test_job_ids_increment(self):
        scheduler = SlurmScheduler()
        a = scheduler.allocate_job("alice", "job-a", 0)
        b = scheduler.allocate_job("alice", "job-b", 0)
        assert b.job_id == a.job_id + 1
        assert scheduler.job_count == 2

    def test_nodes_round_robin(self):
        scheduler = SlurmScheduler(nodes=("n1", "n2"))
        nodes = [scheduler.allocate_job("a", "j", 0).node for _ in range(4)]
        assert nodes == ["n1", "n2", "n1", "n2"]

    def test_needs_nodes(self):
        with pytest.raises(SimulationError):
            SlurmScheduler(nodes=())

    def test_process_environment(self):
        scheduler = SlurmScheduler()
        job = scheduler.allocate_job("alice", "climate", 100)
        env = scheduler.process_environment(job, 2, 7, {"HOME": "/users/alice"})
        assert env["SLURM_JOB_ID"] == str(job.job_id)
        assert env["SLURM_STEP_ID"] == "2"
        assert env["SLURM_PROCID"] == "7"
        assert env["HOSTNAME"] == job.node
        assert env["HOME"] == "/users/alice"


class TestCluster:
    def _cluster(self) -> Cluster:
        cluster = Cluster()
        cluster.filesystem.add_file("/lib64/libc.so.6", _library("libc.so.6"), executable=True)
        cluster.filesystem.add_file("/appl/siren/siren.so", _library("siren.so"), executable=True)
        cluster.filesystem.add_file("/usr/bin/tool", _executable(["libc.so.6"]), executable=True)
        cluster.add_user("alice")
        return cluster

    def test_run_job_counts(self):
        cluster = self._cluster()
        script = JobScript(name="test", steps=(
            StepSpec(processes=(ProcessSpec(executable="/usr/bin/tool", count=3),)),
            StepSpec(processes=(ProcessSpec(executable="/usr/bin/tool", ranks=2),)),
        ))
        job, contexts = cluster.run_job("alice", script, keep_contexts=True)
        assert job.process_count == 5
        assert len(contexts) == 5
        assert cluster.processes_run == 5
        assert job.step_count == 2

    def test_contexts_not_kept_by_default(self):
        cluster = self._cluster()
        script = JobScript(name="t", steps=(StepSpec(processes=(
            ProcessSpec(executable="/usr/bin/tool"),)),))
        _, contexts = cluster.run_job("alice", script)
        assert contexts == []

    def test_unknown_user_raises(self):
        cluster = self._cluster()
        with pytest.raises(SimulationError):
            cluster.run_job("mallory", JobScript(name="x"))

    def test_hook_requires_library_on_filesystem(self):
        cluster = self._cluster()
        with pytest.raises(SimulationError):
            cluster.register_preload_hook(RecordingHook("/nonexistent/siren.so"))

    def test_step_ranks_get_distinct_procids(self):
        cluster = self._cluster()
        cluster.register_preload_hook(RecordingHook("/appl/siren/siren.so"))
        script = JobScript(name="mpi", environment=(("LD_PRELOAD", "/appl/siren/siren.so"),),
                           steps=(StepSpec(processes=(
                               ProcessSpec(executable="/usr/bin/tool", ranks=3),)),))
        _, contexts = cluster.run_job("alice", script, keep_contexts=True)
        assert sorted(c.slurm_procid for c in contexts) == ["0", "1", "2"]

    def test_summary(self):
        cluster = self._cluster()
        summary = cluster.summary()
        assert summary["users"] == 1
        assert summary["jobs"] == 0
