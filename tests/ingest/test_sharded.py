"""Tests for the sharded streaming-ingest front."""

import pytest

from repro.collector.records import InfoType, Layer
from repro.db.store import MessageStore
from repro.ingest import ShardedIngest, shard_of
from repro.transport.messages import UDPMessage
from repro.util.errors import TransportError


def _record_set(records):
    return sorted(tuple(getattr(r, name) for name in r.__dataclass_fields__)
                  for r in records)


def _message(pid: int, info_type: InfoType = InfoType.PROCINFO) -> UDPMessage:
    return UDPMessage(jobid="1", stepid="0", pid=pid, path_hash=f"{pid:032x}", host="n1",
                      time=100, layer=Layer.SELF, info_type=info_type, content="x")


class TestShardRouting:
    def test_same_process_key_always_same_shard(self):
        for pid in range(50):
            shards = {shard_of(_message(pid, info_type), 4)
                      for info_type in (InfoType.PROCINFO, InfoType.OBJECTS,
                                        InfoType.PROCEND)}
            assert len(shards) == 1

    def test_routing_is_deterministic_and_spread(self):
        assignments = [shard_of(_message(pid), 4) for pid in range(200)]
        assert assignments == [shard_of(_message(pid), 4) for pid in range(200)]
        assert set(assignments) == {0, 1, 2, 3}

    def test_at_least_one_shard_required(self):
        with pytest.raises(TransportError):
            ShardedIngest(MessageStore(), shards=0)


class TestShardedIngestFront:
    def test_decode_errors_counted_at_front(self):
        front = ShardedIngest(MessageStore(), shards=2)
        front.handle_datagram(b"garbage")
        front.handle_datagram(_message(1).encode())
        front.flush()
        assert front.decode_errors == 1
        assert front.messages_received == 1

    def test_counters_merge_across_shards(self):
        front = ShardedIngest(MessageStore(), shards=3, batch_size=4)
        for pid in range(30):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.FILEMETA).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        records = front.finalize()
        assert len(records) == 30
        assert front.messages_received == 90
        assert front.records_built == 30
        stats = front.statistics()
        assert stats["shards"] == 3
        assert stats["records_built"] == 30
        assert stats["messages_consumed"] == 90
        # Every shard actually participated.
        assert all(c.records_built > 0 for c in front.consolidators)

    def test_results_in_canonical_key_order(self):
        front = ShardedIngest(MessageStore(), shards=4)
        for pid in (44, 7, 190, 23):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        records = front.finalize()
        assert [record.pid for record in records] == [7, 23, 44, 190]

    def test_snapshot_delta_streams_each_record_once(self):
        front = ShardedIngest(MessageStore(), shards=2)
        for pid in range(4):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        front.handle_datagram(_message(99).encode())  # stays open (no PROCEND)
        first = front.snapshot_delta()
        assert sorted(r.pid for r in first.new_records) == [0, 1, 2, 3]
        assert [r.pid for r in first.open_records] == [99]
        for pid in range(4, 6):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        second = front.snapshot_delta(first.cursor)
        # only the newly finalized records; the open peek is re-served
        assert sorted(r.pid for r in second.new_records) == [4, 5]
        assert [r.pid for r in second.open_records] == [99]
        assert second.cursor > first.cursor
        # delta stream and full snapshot agree on the complete key set
        snapshot_pids = {r.pid for r in front.snapshot()}
        delta_pids = {r.pid for r in first.new_records + second.new_records}
        assert delta_pids | {99} == snapshot_pids


class TestShardedEqualsBatch:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("loss_rate", [0.0, 0.01])
    def test_sharded_streaming_equivalence(self, dual_ingest, shards, loss_rate):
        harness = dual_ingest(loss_rate=loss_rate, seed=5)
        stream_store = MessageStore()
        front = ShardedIngest(stream_store, shards=shards, batch_size=16,
                              flush_batch_size=8)
        front.attach(harness.channel)

        harness.workload.emit_campaign(processes=80)

        batch = harness.batch_records()
        streamed = front.finalize()
        assert _record_set(streamed) == _record_set(batch)
        assert _record_set(stream_store.load_processes()) == _record_set(batch)

    def test_shard_count_does_not_change_output(self, dual_ingest):
        outputs = {}
        for shards in (1, 2, 5):
            harness = dual_ingest(loss_rate=0.01, seed=9)
            front = ShardedIngest(MessageStore(), shards=shards)
            front.attach(harness.channel)
            harness.workload.emit_campaign(processes=60)
            outputs[shards] = _record_set(front.finalize())
        assert outputs[1] == outputs[2] == outputs[5]
