"""Tests for the sharded streaming-ingest front (thread and process workers)."""

import multiprocessing
import time

import pytest

from repro.collector.records import InfoType, Layer
from repro.db.store import MessageStore
from repro.ingest import ShardedIngest, shard_of, shard_of_datagram
from repro.transport.messages import UDPMessage
from repro.util.errors import TransportError
from repro.workload import CampaignConfig, DeploymentCampaign


def _record_set(records):
    return sorted(tuple(getattr(r, name) for name in r.__dataclass_fields__)
                  for r in records)


def _message(pid: int, info_type: InfoType = InfoType.PROCINFO) -> UDPMessage:
    return UDPMessage(jobid="1", stepid="0", pid=pid, path_hash=f"{pid:032x}", host="n1",
                      time=100, layer=Layer.SELF, info_type=info_type, content="x")


def _shard_worker_children():
    """Live shard-worker children (ignores unrelated pools, e.g. hashing)."""
    return [process for process in multiprocessing.active_children()
            if process.name.startswith("siren-shard-")]


class TestShardRouting:
    def test_same_process_key_always_same_shard(self):
        for pid in range(50):
            shards = {shard_of(_message(pid, info_type), 4)
                      for info_type in (InfoType.PROCINFO, InfoType.OBJECTS,
                                        InfoType.PROCEND)}
            assert len(shards) == 1

    def test_routing_is_deterministic_and_spread(self):
        assignments = [shard_of(_message(pid), 4) for pid in range(200)]
        assert assignments == [shard_of(_message(pid), 4) for pid in range(200)]
        assert set(assignments) == {0, 1, 2, 3}

    def test_at_least_one_shard_required(self):
        with pytest.raises(TransportError):
            ShardedIngest(MessageStore(), shards=0)

    def test_worker_backend_validated(self):
        with pytest.raises(TransportError):
            ShardedIngest(MessageStore(), shards=2, workers="fiber")

    def test_raw_datagram_routing_matches_decoded_routing(self):
        # The raw header slice is byte-identical to the key shard_of hashes,
        # so process-mode routing agrees with thread-mode routing exactly.
        for pid in range(100):
            for info_type in (InfoType.PROCINFO, InfoType.PROCEND):
                message = _message(pid, info_type)
                for shards in (1, 2, 4, 7):
                    assert shard_of_datagram(message.encode(), shards) == \
                        shard_of(message, shards)

    def test_raw_routing_screens_malformed_headers(self):
        assert shard_of_datagram(b"garbage", 4) is None
        assert shard_of_datagram(b"SIREN1\x1fonly\x1fthree\x1ffields", 4) is None
        assert shard_of_datagram("SIREN2\x1f".encode() + _message(1).encode()[7:], 4) is None


class TestShardKeyDistribution:
    """Guard against a degenerate FNV partition silently serializing the fleet."""

    @pytest.fixture(scope="class")
    def campaign_datagrams(self) -> list[bytes]:
        campaign = DeploymentCampaign(config=CampaignConfig(
            scale=0.01, seed=101, loss_rate=0.0, ingest_mode="streaming",
            keep_raw_messages=False))
        campaign.prepare()
        captured: list[bytes] = []
        campaign.channel.subscribe(captured.append)
        campaign.run()
        assert len(captured) > 10_000
        return captured

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_no_shard_receives_more_than_twice_the_mean(self, campaign_datagrams,
                                                        shards):
        counts = [0] * shards
        for datagram in campaign_datagrams:
            shard = shard_of_datagram(datagram, shards)
            assert shard is not None
            counts[shard] += 1
        mean = len(campaign_datagrams) / shards
        assert min(counts) > 0, f"idle shard in {counts}"
        assert max(counts) <= 2 * mean, (
            f"degenerate FNV partition: shard loads {counts} vs mean {mean:.0f}")


class TestShardedIngestFront:
    def test_decode_errors_counted_at_front(self):
        front = ShardedIngest(MessageStore(), shards=2)
        front.handle_datagram(b"garbage")
        front.handle_datagram(_message(1).encode())
        front.flush()
        assert front.decode_errors == 1
        assert front.messages_received == 1

    @pytest.mark.parametrize("workers", ["thread", "process"])
    def test_counters_merge_across_shards(self, workers):
        front = ShardedIngest(MessageStore(), shards=3, batch_size=4, workers=workers)
        for pid in range(30):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.FILEMETA).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        records = front.finalize()
        assert len(records) == 30
        assert front.messages_received == 90
        assert front.records_built == 30
        stats = front.statistics()
        assert stats["shards"] == 3
        assert stats["records_built"] == 30
        assert stats["messages_consumed"] == 90

    def test_every_thread_shard_participates(self):
        front = ShardedIngest(MessageStore(), shards=3, batch_size=4)
        for pid in range(30):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        front.finalize()
        assert all(c.records_built > 0 for c in front.consolidators)

    @pytest.mark.parametrize("workers", ["thread", "process"])
    def test_results_in_canonical_key_order(self, workers):
        front = ShardedIngest(MessageStore(), shards=4, workers=workers)
        for pid in (44, 7, 190, 23):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        records = front.finalize()
        assert [record.pid for record in records] == [7, 23, 44, 190]

    @pytest.mark.parametrize("workers", ["thread", "process"])
    def test_snapshot_delta_streams_each_record_once(self, workers):
        front = ShardedIngest(MessageStore(), shards=2, workers=workers)
        for pid in range(4):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        front.handle_datagram(_message(99).encode())  # stays open (no PROCEND)
        first = front.snapshot_delta()
        assert sorted(r.pid for r in first.new_records) == [0, 1, 2, 3]
        assert [r.pid for r in first.open_records] == [99]
        for pid in range(4, 6):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        second = front.snapshot_delta(first.cursor)
        # only the newly finalized records; the open peek is re-served
        assert sorted(r.pid for r in second.new_records) == [4, 5]
        assert [r.pid for r in second.open_records] == [99]
        assert second.cursor > first.cursor
        # delta stream and full snapshot agree on the complete key set
        snapshot_pids = {r.pid for r in front.snapshot()}
        delta_pids = {r.pid for r in first.new_records + second.new_records}
        assert delta_pids | {99} == snapshot_pids
        front.finalize()

    def test_process_mode_persists_raw_messages_when_asked(self):
        store = MessageStore()
        front = ShardedIngest(store, shards=2, batch_size=8, workers="process",
                              persist_raw=True)
        for pid in range(10):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        front.finalize()
        assert store.message_count() == 20
        assert store.process_count() == 10


class TestProcessWorkerLifecycle:
    def test_finalize_joins_all_workers_and_leaves_no_children(self):
        front = ShardedIngest(MessageStore(), shards=3, batch_size=8,
                              workers="process")
        for pid in range(24):
            front.handle_datagram(_message(pid).encode())
            front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
        records = front.finalize()
        assert len(records) == 24
        assert front._pool.alive_workers() == []
        assert all(process.exitcode == 0 for process in front._pool.processes)
        assert _shard_worker_children() == []
        # finalize is idempotent once the workers are gone
        assert len(front.finalize()) == 24

    def test_killed_worker_surfaces_transport_error_not_a_hang(self):
        # max_restarts=0 restores fail-fast; the default supervisor would
        # heal this kill instead (tests/ingest/test_selfheal.py).
        front = ShardedIngest(MessageStore(), shards=2, batch_size=8,
                              workers="process", max_restarts=0)
        for pid in range(20):
            front.handle_datagram(_message(pid).encode())
        front._pool.processes[0].kill()
        deadline = time.monotonic() + 30
        with pytest.raises(TransportError, match="shard 0 worker died"):
            while True:  # replay continues until the front notices the crash
                assert time.monotonic() < deadline, "crash was never surfaced"
                for pid in range(20, 40):
                    front.handle_datagram(_message(pid).encode())
                    front.handle_datagram(_message(pid, InfoType.PROCEND).encode())
                front.finalize()
        # the failure tore the whole pool down -- no orphaned children
        assert front._pool.alive_workers() == []
        assert _shard_worker_children() == []

    def test_close_aborts_workers_without_final_merge(self):
        front = ShardedIngest(MessageStore(), shards=2, workers="process")
        front.handle_datagram(_message(1).encode())
        front.close()
        assert front._pool.alive_workers() == []
        assert _shard_worker_children() == []


class TestShardedEqualsBatch:
    @pytest.mark.parametrize("shards", [1, 3])
    @pytest.mark.parametrize("loss_rate", [0.0, 0.01])
    def test_sharded_streaming_equivalence(self, dual_ingest, shards, loss_rate):
        harness = dual_ingest(loss_rate=loss_rate, seed=5)
        stream_store = MessageStore()
        front = ShardedIngest(stream_store, shards=shards, batch_size=16,
                              flush_batch_size=8)
        front.attach(harness.channel)

        harness.workload.emit_campaign(processes=80)

        batch = harness.batch_records()
        streamed = front.finalize()
        assert _record_set(streamed) == _record_set(batch)
        assert _record_set(stream_store.load_processes()) == _record_set(batch)

    def test_shard_count_does_not_change_output(self, dual_ingest):
        outputs = {}
        for shards in (1, 2, 5):
            harness = dual_ingest(loss_rate=0.01, seed=9)
            front = ShardedIngest(MessageStore(), shards=shards)
            front.attach(harness.channel)
            harness.workload.emit_campaign(processes=60)
            outputs[shards] = _record_set(front.finalize())
        assert outputs[1] == outputs[2] == outputs[5]


class TestProcessEqualsThreadEqualsBatch:
    """The tentpole pin: all three ingest paths, one datagram stream.

    Process-parallel ingest must be record-for-record *and*
    counter-for-counter identical to thread-mode sharding and to the batch
    post-pass, across seeds, loss rates up to 50% and shard counts -- the
    same partition function routes both modes, the per-shard batch
    boundaries (and therefore the idle-close epoch clocks) coincide, so
    even the early-vs-idle close split must agree exactly.
    """

    @pytest.mark.parametrize("seed", [5, 11])
    @pytest.mark.parametrize("loss_rate", [0.0, 0.05, 0.5])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_dual_ingest_equivalence(self, dual_ingest, seed, loss_rate, shards):
        harness = dual_ingest(loss_rate=loss_rate, seed=seed)
        thread_front = ShardedIngest(MessageStore(), shards=shards, batch_size=16,
                                     flush_batch_size=8)
        process_store = MessageStore()
        process_front = ShardedIngest(process_store, shards=shards, batch_size=16,
                                      flush_batch_size=8, workers="process")
        thread_front.attach(harness.channel)
        process_front.attach(harness.channel)

        harness.workload.emit_campaign(processes=60)

        batch = harness.batch_records()
        threaded = thread_front.finalize()
        processed = process_front.finalize()
        assert _record_set(processed) == _record_set(threaded) == _record_set(batch)
        assert _record_set(process_store.load_processes()) == _record_set(batch)
        assert process_front.statistics() == thread_front.statistics()

    def test_mid_stream_snapshots_do_not_disturb_equivalence(self, dual_ingest):
        harness = dual_ingest(loss_rate=0.02, seed=3)
        front = ShardedIngest(MessageStore(), shards=2, batch_size=16,
                              flush_batch_size=8, workers="process")
        front.attach(harness.channel)
        cursor = 0
        seen_keys: set = set()
        for pid in range(50):
            harness.workload.emit_process(pid, time=100 + pid // 10)
            if pid % 10 == 9:
                delta = front.snapshot_delta(cursor)
                cursor = delta.cursor
                fresh = {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time)
                         for r in delta.new_records}
                assert not (fresh & seen_keys), "delta re-delivered a record"
                seen_keys |= fresh
                front.snapshot()  # full snapshot interleaves harmlessly
        harness.workload.end_all()
        final = front.finalize()
        assert _record_set(final) == _record_set(harness.batch_records())
        # every record was announced by exactly one delta or the final close
        final_keys = {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time)
                      for r in final}
        assert seen_keys <= final_keys
