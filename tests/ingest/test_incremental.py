"""Tests for the incremental (streaming) consolidator.

The load-bearing assertion of the whole subsystem is at the bottom:
streaming consolidation produces record-for-record identical output to the
batch :class:`~repro.postprocess.consolidate.Consolidator` across seeds and
loss rates, both paths fed by the *same* surviving datagrams.
"""

import pytest

from repro.collector.records import InfoType, Layer, format_keyvalues
from repro.db.store import MessageStore
from repro.ingest import IncrementalConsolidator
from repro.transport.messages import UDPMessage
from repro.transport.receiver import MessageReceiver
from repro.util.errors import TransportError


def _record_set(records):
    return sorted(tuple(getattr(r, name) for name in r.__dataclass_fields__)
                  for r in records)


def _msg(info_type: InfoType, content: str, *, pid: int = 10, layer: Layer = Layer.SELF,
         chunk_index: int = 0, chunk_total: int = 1) -> UDPMessage:
    return UDPMessage(jobid="7", stepid="0", pid=pid, path_hash=f"{pid:032x}", host="n1",
                      time=100, layer=layer, info_type=info_type, content=content,
                      chunk_index=chunk_index, chunk_total=chunk_total)


def _system_burst(pid: int = 10) -> list[UDPMessage]:
    return [
        _msg(InfoType.PROCINFO, format_keyvalues({
            "pid": pid, "ppid": 1, "uid": 1000, "gid": 1000,
            "exe": "/usr/bin/bash", "category": "system"}), pid=pid),
        _msg(InfoType.FILEMETA, "inode=1", pid=pid),
        _msg(InfoType.OBJECTS, "/lib64/libc.so.6", pid=pid),
    ]


def _procend(pid: int = 10) -> UDPMessage:
    return _msg(InfoType.PROCEND, "end_time=105|exit_code=0", pid=pid)


class TestFinalizationRules:
    def test_early_finalize_on_procend(self):
        sink = IncrementalConsolidator(MessageStore())
        sink.feed_many(_system_burst())
        assert sink.open_processes == 1
        assert sink.records_built == 0
        sink.feed(_procend())
        assert sink.open_processes == 0
        assert sink.early_finalized == 1
        record = sink.finalize()[0]
        assert record.executable == "/usr/bin/bash"
        assert record.incomplete == 0

    def test_procend_without_expected_types_waits_for_idle(self):
        """A PROCEND over an incomplete group closes one epoch later, not at once."""
        sink = IncrementalConsolidator(MessageStore())
        burst = _system_burst()
        sink.feed_many([burst[0], burst[1]])  # OBJECTS lost on the wire
        sink.feed(_procend())
        assert sink.open_processes == 1  # grace for reordering transports
        sink.advance_epoch()
        assert sink.open_processes == 0
        assert sink.idle_closed == 1
        assert sink.finalize()[0].incomplete == 1

    def test_idle_close_when_procend_lost(self):
        sink = IncrementalConsolidator(MessageStore(), idle_epochs=2)
        sink.feed_many(_system_burst())
        assert sink.advance_epoch() == 0  # one epoch idle: still open
        assert sink.advance_epoch() == 1  # two epochs idle: closed
        assert sink.idle_closed == 1
        assert sink.finalize()[0].incomplete == 0

    def test_late_procend_after_close_is_dropped_and_counted(self):
        sink = IncrementalConsolidator(MessageStore(), idle_epochs=2)
        sink.feed_many(_system_burst())
        sink.advance_epoch()
        sink.advance_epoch()
        assert sink.open_processes == 0
        sink.feed(_procend())
        assert sink.late_messages == 1
        assert sink.records_built == 1  # no second record for the key

    def test_chunked_content_held_open_until_all_chunks(self):
        sink = IncrementalConsolidator(MessageStore())
        sink.feed_many(_system_burst())
        sink.feed(_msg(InfoType.MODULES, "part-one|", chunk_index=0, chunk_total=2))
        sink.feed(_procend())
        # PROCEND saw an incomplete chunked group: held for the grace epoch.
        assert sink.open_processes == 1
        sink.feed(_msg(InfoType.MODULES, "part-two", chunk_index=1, chunk_total=2))
        record = sink.finalize()[0]
        assert record.modules == "part-one|part-two"

    def test_evicted_key_never_clobbers_the_finalized_record(self):
        """A message later than the dedup horizon resurrects a content-free
        group; its flush must lose to the already-persisted record."""
        store = MessageStore()
        sink = IncrementalConsolidator(store, flush_batch_size=1, idle_epochs=2)
        sink.feed_many(_system_burst())
        for _ in range(2):
            sink.advance_epoch()  # idle close + flush
        for _ in range(2):
            sink.advance_epoch()  # dedup entry evicted
        sink.feed(_procend())     # resurrects the key as a PROCEND-only group
        assert sink.open_processes == 1
        records = sink.finalize()
        assert len(records) == 1  # snapshot/finalize never show a duplicate
        assert records[0].executable == "/usr/bin/bash"
        assert records[0].incomplete == 0

    def test_closed_key_dedup_set_is_evicted(self):
        sink = IncrementalConsolidator(MessageStore(), idle_epochs=2)
        sink.feed_many(_system_burst())
        sink.feed(_procend())
        assert len(sink._closed) == 1
        for _ in range(2):
            sink.advance_epoch()
        assert len(sink._closed) == 0

    def test_unsafe_idle_epochs_rejected(self):
        """One epoch of silence can be a burst straddling a batch boundary."""
        with pytest.raises(TransportError):
            IncrementalConsolidator(MessageStore(), idle_epochs=1)

    def test_peak_open_processes_tracked(self):
        sink = IncrementalConsolidator(MessageStore())
        for pid in range(5):
            sink.feed_many(_system_burst(pid=pid))
        for pid in range(5):
            sink.feed(_procend(pid=pid))
        assert sink.peak_open_processes == 5
        assert sink.open_processes == 0


class TestFlushAndSnapshot:
    def test_flush_batches_reach_store_incrementally(self):
        store = MessageStore()
        sink = IncrementalConsolidator(store, flush_batch_size=2)
        for pid in range(5):
            sink.feed_many(_system_burst(pid=pid))
            sink.feed(_procend(pid=pid))
        # Two full batches of 2 auto-flushed; the fifth record still pending.
        assert store.process_count() == 4
        sink.finalize()
        assert store.process_count() == 5

    def test_snapshot_peeks_open_groups_without_closing(self):
        sink = IncrementalConsolidator(MessageStore())
        sink.feed_many(_system_burst(pid=1))
        sink.feed(_procend(pid=1))
        sink.feed_many(_system_burst(pid=2))  # still open: no PROCEND yet
        snapshot = sink.snapshot()
        assert len(snapshot) == 2
        assert sink.open_processes == 1  # peek did not close anything
        assert {record.pid for record in snapshot} == {1, 2}
        # The open process keeps accumulating after the snapshot.
        sink.feed(_procend(pid=2))
        assert _record_set(sink.finalize()) == _record_set(snapshot)

    def test_finalize_is_stable(self):
        sink = IncrementalConsolidator(MessageStore())
        sink.feed_many(_system_burst())
        first = sink.finalize()
        assert sink.finalize() == first


class TestReceiverSinkIntegration:
    def test_receiver_advances_sink_epoch_per_flush(self):
        store = MessageStore()
        sink = IncrementalConsolidator(store, idle_epochs=2)
        receiver = MessageReceiver(store, sink=sink, persist_raw=False, batch_size=4)
        for message in _system_burst():
            receiver.handle_message(message)
        receiver.flush()
        assert sink.messages_consumed == 3
        assert store.message_count() == 0  # raw persistence off
        # Two further flush boundaries with unrelated traffic close the group.
        for pid in (20, 21):
            for message in _system_burst(pid=pid):
                receiver.handle_message(message)
            receiver.flush()
        assert sink.idle_closed >= 1


class TestStreamingEqualsBatch:
    """The equivalence contract, across seeds x loss rates."""

    @pytest.mark.parametrize("loss_rate", [0.0, 0.0002, 0.01, 0.2])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_record_for_record_equivalence(self, dual_ingest, seed, loss_rate):
        harness = dual_ingest(loss_rate=loss_rate, seed=seed)
        stream_store = MessageStore()
        sink = IncrementalConsolidator(stream_store, flush_batch_size=8, idle_epochs=2)
        stream_receiver = MessageReceiver(stream_store, sink=sink, persist_raw=False,
                                          batch_size=16)
        stream_receiver.attach(harness.channel)

        harness.workload.emit_campaign(processes=80)
        stream_receiver.flush()

        batch = harness.batch_records()
        streamed = sink.finalize()
        assert len(streamed) == len(batch) > 0
        assert _record_set(streamed) == _record_set(batch)
        # The upserted table holds exactly the same rows.
        assert _record_set(stream_store.load_processes()) == _record_set(batch)

    def test_heavy_loss_still_equivalent(self, dual_ingest):
        harness = dual_ingest(loss_rate=0.5, seed=11)
        stream_store = MessageStore()
        sink = IncrementalConsolidator(stream_store, flush_batch_size=4, idle_epochs=2)
        receiver = MessageReceiver(stream_store, sink=sink, persist_raw=False, batch_size=8)
        receiver.attach(harness.channel)
        harness.workload.emit_campaign(processes=60)
        receiver.flush()
        assert _record_set(sink.finalize()) == _record_set(harness.batch_records())
