"""Shared machinery for the streaming-ingest tests.

The central fixture builds a *dual-ingest harness*: one channel carrying one
datagram stream (optionally lossy) delivered simultaneously to

* a classic batch receiver persisting raw messages, and
* the ingest path under test (incremental sink or sharded front).

Because both paths observe the exact same surviving datagrams, comparing the
batch consolidator's output with the streaming output pins record-for-record
equivalence without coordinating two RNGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.collector.records import InfoType, Layer, format_keyvalues
from repro.db.store import MessageStore, ProcessRecord
from repro.transport.channel import InMemoryChannel, LossyChannel
from repro.transport.messages import UDPMessage
from repro.transport.receiver import MessageReceiver
from repro.transport.sender import UDPSender
from repro.util.rng import SeededRNG


def record_key(record: ProcessRecord) -> tuple:
    """Every field of a record, for exact record-for-record comparison."""
    return tuple(getattr(record, name) for name in record.__dataclass_fields__)


def record_set(records: list[ProcessRecord]) -> list[tuple]:
    """Order-insensitive canonical form of a record list."""
    return sorted(record_key(record) for record in records)


@dataclass
class SyntheticWorkload:
    """Emits realistic process message bursts over a channel."""

    sender: UDPSender
    rng: SeededRNG
    processes_emitted: int = 0
    _running: list[UDPMessage] = field(default_factory=list)  # pending PROCENDs

    def emit_process(self, pid: int, *, time: int = 100) -> None:
        """One process: contiguous constructor burst now, PROCEND later."""
        category = self.rng.choice(["system", "user", "python"])
        exe = {"system": f"/usr/bin/tool{pid % 5}",
               "user": f"/project/p/u/app{pid % 3}",
               "python": "/usr/bin/python3.10"}[category]
        base = dict(jobid=str(1 + pid // 50), stepid="0", pid=pid,
                    path_hash=f"{pid:032x}", host=f"n{pid % 4}", time=time)
        msg = lambda info_type, content, layer=Layer.SELF: UDPMessage(
            **base, layer=layer, info_type=info_type, content=content)

        burst = [
            msg(InfoType.PROCINFO, format_keyvalues({
                "pid": pid, "ppid": 1, "uid": 1000 + pid % 7, "gid": 1000,
                "exe": exe, "category": category})),
            msg(InfoType.FILEMETA, format_keyvalues({"inode": pid, "size": 4096})),
            msg(InfoType.OBJECTS,
                "\n".join(f"/opt/cray/pe/lib64/lib{i}.so" for i in range(30))),
            msg(InfoType.OBJECTS_H, "3:abcdefghijklmnop:qrstuvwx"),
        ]
        if category in ("user", "python"):
            burst.append(msg(InfoType.MAPS, "\n".join(
                f"7f{i:010x}-7f{i + 1:010x} r-xp /lib64/lib{i}.so" for i in range(40))))
            burst.append(msg(InfoType.MAPS_H, "6:mapsmapsmaps:mapmap"))
        if category == "user":
            burst.extend([
                msg(InfoType.MODULES, "siren/0.1:cce/17.0.1"),
                msg(InfoType.MODULES_H, "3:modmodmod:mm"),
                msg(InfoType.COMPILERS, ";".join(
                    f"GCC: (SUSE Linux) 12.{i}.0" for i in range(12))),
                msg(InfoType.COMPILERS_H, "3:cccccccc:cc"),
                msg(InfoType.FILE_H, "96:filefilefile:ff"),
                msg(InfoType.STRINGS_H, "48:strstrstr:ss"),
                msg(InfoType.SYMBOLS_H, "24:symsymsym:yy"),
            ])
        if category == "python":
            burst.extend([
                msg(InfoType.PROCINFO,
                    format_keyvalues({"script": f"/users/u/run{pid % 3}.py"}),
                    layer=Layer.SCRIPT),
                msg(InfoType.FILEMETA, "inode=9|size=40", layer=Layer.SCRIPT),
                msg(InfoType.FILE_H, "3:scriptscript:pt", layer=Layer.SCRIPT),
            ])
        self.sender.send_all(burst)
        self._running.append(msg(InfoType.PROCEND,
                                 format_keyvalues({"end_time": time + 5, "exit_code": 0})))
        self.processes_emitted += 1

    def maybe_end_one(self) -> None:
        """End the oldest still-running process (if any)."""
        if self._running:
            self.sender.send(self._running.pop(0))

    def end_all(self) -> None:
        """End every still-running process."""
        while self._running:
            self.maybe_end_one()

    def emit_campaign(self, processes: int) -> None:
        """Interleave process starts and ends, then end everything."""
        for pid in range(processes):
            self.emit_process(pid, time=100 + pid // 10)
            if self.rng.random() < 0.6:
                self.maybe_end_one()
        self.end_all()


@dataclass
class DualIngest:
    """One datagram stream, two ingest paths (batch reference + under-test)."""

    channel: LossyChannel | InMemoryChannel
    workload: SyntheticWorkload
    batch_store: MessageStore
    batch_receiver: MessageReceiver

    def batch_records(self) -> list[ProcessRecord]:
        from repro.postprocess.consolidate import Consolidator
        self.batch_receiver.flush()
        return Consolidator(self.batch_store).run()


@pytest.fixture()
def dual_ingest():
    """Factory: dual-ingest harness around a seeded (possibly lossy) channel.

    The caller attaches its own streaming path to ``harness.channel`` before
    emitting, then compares against ``harness.batch_records()``.
    """
    def build(*, loss_rate: float = 0.0, seed: int = 1,
              max_datagram_size: int = 300) -> DualIngest:
        if loss_rate > 0:
            channel = LossyChannel(loss_rate=loss_rate, rng=SeededRNG(seed))
        else:
            channel = InMemoryChannel()
        batch_store = MessageStore()
        batch_receiver = MessageReceiver(batch_store, batch_size=32)
        batch_receiver.attach(channel)
        # Small datagram budget so OBJECTS/MAPS/COMPILERS genuinely chunk.
        sender = UDPSender(channel, max_datagram_size=max_datagram_size)
        workload = SyntheticWorkload(sender=sender, rng=SeededRNG(seed * 31 + 7))
        return DualIngest(channel=channel, workload=workload,
                          batch_store=batch_store, batch_receiver=batch_receiver)

    return build
