"""The chaos-equivalence suite: the ingest pipeline heals under injected faults.

Every test here runs under a *deterministic* fault plan (seeded via
``REPRO_CHAOS_SEED``, default 7), so a failure reproduces exactly -- run the
suite alone with ``pytest -m chaos``.  The pins, in rising order of ambition:

* a SIGKILLed (or stalled) shard worker is healed by the supervisor, and the
  record output is *identical* to thread mode because the resend buffer
  replays everything unacknowledged -- with the recovery visible in
  ``statistics()`` (``worker_restarts``) and the loss counters at zero;
* when the crash repeats past the restart budget, the failure is an honest
  :class:`~repro.util.errors.WorkerCrashError`, never a hang, and never an
  orphaned child process;
* under channel faults (loss, duplication, corruption, truncation, jitter)
  streaming ingest equals the batch post-pass over the surviving messages,
  record for record; reordering -- the one fault that can legitimately cross
  the idle-close grace -- still preserves the process-key sets;
* store-level transient faults are absorbed by the write-retry layer without
  changing a single record;
* a whole campaign survives a mixed-hostility plan end to end.
"""

import multiprocessing
import os

import pytest

from repro.db.store import MessageStore
from repro.faults import (
    ChannelFaultProfile,
    FaultPlan,
    FaultyChannel,
    StoreFaultInjector,
    StoreFaultProfile,
    WorkerFaultProfile,
    preset_plans,
)
from repro.ingest import ShardedIngest
from repro.util.errors import WorkerCrashError
from repro.util.retry import RetryPolicy
from repro.workload import CampaignConfig, DeploymentCampaign

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"))

#: Supervisor keys that are legitimately nonzero only on the healed side.
_SUPERVISOR_KEYS = ("worker_restarts", "resend_replayed_batches")


def _record_set(records):
    return sorted(tuple(getattr(r, name) for name in r.__dataclass_fields__)
                  for r in records)


def _key_set(records):
    return {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time) for r in records}


def _shard_worker_children():
    return [process for process in multiprocessing.active_children()
            if process.name.startswith("siren-shard-")]


def _trim(front: ShardedIngest) -> ShardedIngest:
    """Shorten supervision latencies so the chaos suite stays fast."""
    front._pool.drain_grace = 1.0
    front._pool.restart_backoff = RetryPolicy(attempts=front._pool.max_restarts,
                                              base_delay=0.02, max_delay=0.1)
    return front


class TestSupervisedRestart:
    def test_sigkill_every_shard_heals_identical_to_thread_mode(self, dual_ingest):
        harness = dual_ingest(seed=CHAOS_SEED)
        plan = FaultPlan(seed=CHAOS_SEED, workers=(
            WorkerFaultProfile(shard=0, kill_after_batches=3),
            WorkerFaultProfile(shard=1, kill_after_batches=5),
        ))
        thread_front = ShardedIngest(MessageStore(), shards=2, batch_size=16,
                                     flush_batch_size=8)
        process_front = _trim(ShardedIngest(MessageStore(), shards=2,
                                            batch_size=16, flush_batch_size=8,
                                            workers="process", fault_plan=plan))
        thread_front.attach(harness.channel)
        process_front.attach(harness.channel)

        harness.workload.emit_campaign(processes=60)

        threaded = thread_front.finalize()
        processed = process_front.finalize()
        assert _record_set(processed) == _record_set(threaded)

        stats = process_front.statistics()
        assert stats["worker_restarts"] == 2          # both kills healed
        assert stats["restart_lost_groups"] == 0      # replay window covered
        assert stats["restart_lost_datagrams"] == 0
        assert stats["resend_replayed_batches"] > 0
        # Beyond the records: every operational counter (messages consumed,
        # early/idle closes, late messages...) must match thread mode exactly
        # -- the replay re-ran the same epochs on the same batches.
        thread_stats = thread_front.statistics()
        for side in (stats, thread_stats):
            for key in _SUPERVISOR_KEYS:
                side.pop(key)
        assert stats == thread_stats
        assert _shard_worker_children() == []

    def test_external_sigkill_mid_stream_heals(self, dual_ingest):
        harness = dual_ingest(seed=CHAOS_SEED + 1)
        thread_front = ShardedIngest(MessageStore(), shards=2, batch_size=16,
                                     flush_batch_size=8)
        process_front = _trim(ShardedIngest(MessageStore(), shards=2,
                                            batch_size=16, flush_batch_size=8,
                                            workers="process"))
        thread_front.attach(harness.channel)
        process_front.attach(harness.channel)

        for pid in range(30):
            harness.workload.emit_process(pid, time=100 + pid // 10)
        process_front._pool.processes[0].kill()  # a genuine external SIGKILL
        for pid in range(30, 60):
            harness.workload.emit_process(pid, time=103 + pid // 10)
        harness.workload.end_all()

        threaded = thread_front.finalize()
        processed = process_front.finalize()
        assert _record_set(processed) == _record_set(threaded)
        assert process_front.worker_restarts == 1
        assert process_front.statistics()["restart_lost_groups"] == 0
        assert _shard_worker_children() == []

    def test_stalled_worker_is_killed_and_healed(self, dual_ingest):
        harness = dual_ingest(seed=CHAOS_SEED + 2)
        plan = FaultPlan(seed=CHAOS_SEED, workers=(
            WorkerFaultProfile(shard=0, stall_after_batches=2, stall_seconds=60),))
        thread_front = ShardedIngest(MessageStore(), shards=2, batch_size=16,
                                     flush_batch_size=8)
        process_front = _trim(ShardedIngest(MessageStore(), shards=2,
                                            batch_size=16, flush_batch_size=8,
                                            workers="process", fault_plan=plan,
                                            stall_timeout=1.0))
        thread_front.attach(harness.channel)
        process_front.attach(harness.channel)

        harness.workload.emit_campaign(processes=40)

        threaded = thread_front.finalize()
        processed = process_front.finalize()
        assert _record_set(processed) == _record_set(threaded)
        assert process_front.worker_restarts >= 1   # the stall was broken
        assert process_front.statistics()["restart_lost_groups"] == 0
        assert _shard_worker_children() == []

    def test_restart_budget_exhaustion_raises_and_leaves_no_orphans(self, dual_ingest):
        harness = dual_ingest(seed=CHAOS_SEED + 3)
        plan = FaultPlan(seed=CHAOS_SEED, workers=(
            WorkerFaultProfile(shard=0, kill_after_batches=1, repeat=True),))
        front = _trim(ShardedIngest(MessageStore(), shards=2, batch_size=8,
                                    workers="process", max_restarts=1,
                                    fault_plan=plan))
        front.attach(harness.channel)
        with pytest.raises(WorkerCrashError, match="shard 0 worker died"):
            harness.workload.emit_campaign(processes=40)
            front.finalize()
        assert front._pool.worker_restarts == 1     # the budget was spent
        assert front._pool.alive_workers() == []
        assert _shard_worker_children() == []
        # The original raise travelled up the (fire-and-forget) sender and
        # was swallowed there; the pool must keep resurfacing the crash on
        # every further use -- never a silent no-op or a bland "closed".
        with pytest.raises(WorkerCrashError, match="restart budget of 1 exhausted"):
            front._pool.sync()


class TestTransportFaultEquivalence:
    @pytest.mark.parametrize("preset", ["loss-5pct", "dup-10pct", "corrupt-5pct",
                                        "truncate-5pct", "jitter-10pct",
                                        "mixed-hostile"])
    def test_streaming_equals_batch_under_order_preserving_faults(
            self, dual_ingest, preset):
        plan = preset_plans(seed=CHAOS_SEED)[preset]
        assert plan.channel.order_preserving
        harness = dual_ingest(seed=CHAOS_SEED)
        # Interpose the fault pipeline between the sender and the shared
        # channel: both ingest paths observe the *same* surviving datagrams.
        faulty = FaultyChannel(plan=plan, inner=harness.channel)
        harness.workload.sender.channel = faulty
        front = ShardedIngest(MessageStore(), shards=2, batch_size=16,
                              flush_batch_size=8)
        front.attach(harness.channel)

        harness.workload.emit_campaign(processes=50)
        faulty.flush()  # end of stream: deliver any held-back datagrams

        assert _record_set(front.finalize()) == _record_set(harness.batch_records())
        assert front.decode_errors == harness.batch_receiver.decode_errors
        if plan.channel.corrupt_rate or plan.channel.truncate_rate:
            assert faulty.corrupted + faulty.truncated > 0
        assert front.quarantined == min(front.decode_errors,
                                        front.quarantine_capacity)

    def test_reordering_preserves_process_key_sets(self, dual_ingest):
        plan = preset_plans(seed=CHAOS_SEED)["reorder-5pct"]
        assert not plan.channel.order_preserving
        harness = dual_ingest(seed=CHAOS_SEED)
        faulty = FaultyChannel(plan=plan, inner=harness.channel)
        harness.workload.sender.channel = faulty
        front = ShardedIngest(MessageStore(), shards=2, batch_size=16,
                              flush_batch_size=8)
        front.attach(harness.channel)

        harness.workload.emit_campaign(processes=50)
        faulty.flush()

        streamed = front.finalize()
        batch = harness.batch_records()
        assert faulty.reordered > 0
        # Reordering may split a group across the idle grace, so records can
        # differ in content -- but never in which processes exist.
        assert _key_set(streamed) == _key_set(batch)
        assert front.statistics()["late_messages"] >= 0

    def test_process_mode_equals_thread_mode_under_drop_and_dup(self, dual_ingest):
        # drop+dup keeps every delivered datagram decodable, so thread and
        # process mode see identical flush-epoch boundaries and the *full*
        # statistics dicts must match.  (Corrupt/truncate faults shift epoch
        # boundaries between the modes -- process batches count raw
        # datagrams, thread flushes count decoded messages -- so there only
        # the record output and decode counters are comparable, which the
        # parametrized streaming==batch test above already pins.)
        plan = FaultPlan(seed=CHAOS_SEED, channel=ChannelFaultProfile(
            drop_rate=0.05, duplicate_rate=0.05))
        harness = dual_ingest(seed=CHAOS_SEED)
        faulty = FaultyChannel(plan=plan, inner=harness.channel)
        harness.workload.sender.channel = faulty
        thread_front = ShardedIngest(MessageStore(), shards=2, batch_size=16,
                                     flush_batch_size=8)
        process_front = _trim(ShardedIngest(MessageStore(), shards=2,
                                            batch_size=16, flush_batch_size=8,
                                            workers="process"))
        thread_front.attach(harness.channel)
        process_front.attach(harness.channel)

        harness.workload.emit_campaign(processes=50)
        faulty.flush()

        threaded = thread_front.finalize()
        processed = process_front.finalize()
        assert _record_set(processed) == _record_set(threaded)
        assert process_front.statistics() == thread_front.statistics()
        assert _shard_worker_children() == []


class TestStoreFaultResilience:
    def test_write_retries_absorb_transient_store_faults(self, dual_ingest):
        plan = FaultPlan(seed=CHAOS_SEED,
                         store=StoreFaultProfile(error_rate=0.05, error_burst=2))
        harness = dual_ingest(seed=CHAOS_SEED)
        store = MessageStore(retry=RetryPolicy(attempts=6, base_delay=0.0))
        store._sleep = lambda _: None
        injector = StoreFaultInjector(plan).install(store)
        front = ShardedIngest(store, shards=2, batch_size=16, flush_batch_size=8)
        front.attach(harness.channel)

        harness.workload.emit_campaign(processes=50)

        assert _record_set(front.finalize()) == _record_set(harness.batch_records())
        assert injector.transient_raised > 0     # faults genuinely fired
        assert store.write_retries >= injector.transient_raised


class TestCampaignUnderChaos:
    def test_campaign_survives_mixed_hostility_end_to_end(self):
        plan = FaultPlan(
            seed=CHAOS_SEED,
            channel=ChannelFaultProfile(drop_rate=0.03, duplicate_rate=0.03,
                                        corrupt_rate=0.01, truncate_rate=0.01),
            store=StoreFaultProfile(error_rate=0.01, error_burst=2),
            workers=(WorkerFaultProfile(shard=0, kill_after_batches=1),),
        )
        config = CampaignConfig(scale=0.005, seed=CHAOS_SEED, loss_rate=0.0,
                                ingest_mode="streaming", ingest_shards=2,
                                ingest_workers="process", fault_plan=plan)
        campaign = DeploymentCampaign(config=config)
        campaign.prepare()
        _trim(campaign.ingest)
        result = campaign.run()

        assert result.records                      # the campaign produced output
        assert result.fault_counters["dropped"] > 0
        assert result.worker_restarts >= 1         # the kill was healed
        assert result.ingest.statistics()["restart_lost_groups"] == 0
        assert result.quarantined <= result.decode_errors
        assert result.store_fault_injector is not None
        if result.store_fault_injector.transient_raised:
            assert result.store.write_retries >= 1
        assert _shard_worker_children() == []

    def test_campaign_chaos_run_is_reproducible(self):
        def run():
            plan = FaultPlan(seed=CHAOS_SEED,
                             channel=ChannelFaultProfile(drop_rate=0.05))
            config = CampaignConfig(scale=0.005, seed=CHAOS_SEED, loss_rate=0.0,
                                    ingest_mode="streaming",
                                    fault_plan=plan)
            result = DeploymentCampaign(config=config).run()
            return _record_set(result.records), result.fault_counters

        first_records, first_counters = run()
        second_records, second_counters = run()
        assert first_records == second_records
        assert first_counters == second_counters
