"""RetryPolicy: the backoff schedule behind store writes and worker restarts."""

import random

from repro.util.retry import NO_RETRY, RetryPolicy


class TestDelaySchedule:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(attempts=10, base_delay=0.01, growth=2.0,
                             max_delay=0.05, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(6)]
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert all(delay == 0.05 for delay in delays[3:])

    def test_jitter_stays_within_band_and_cap(self):
        policy = RetryPolicy(attempts=4, base_delay=0.01, growth=2.0,
                             max_delay=0.25, jitter=0.5)
        rng = random.Random(13)
        for attempt in range(4):
            nominal = min(policy.max_delay,
                          policy.base_delay * policy.growth ** attempt)
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.5 * nominal <= delay <= min(policy.max_delay, 1.5 * nominal)

    def test_no_rng_means_deterministic_nominal(self):
        policy = RetryPolicy(attempts=2, base_delay=0.02, jitter=0.9)
        assert policy.delay(0) == 0.02

    def test_no_retry_sentinel(self):
        assert NO_RETRY.attempts == 0


class TestEdgeCases:
    def test_zero_attempts_is_valid_and_means_no_retry(self):
        policy = RetryPolicy(attempts=0)
        assert policy.attempts == 0
        # the delay schedule is still well-defined (callers may pre-compute)
        assert policy.delay(0) == policy.base_delay

    def test_one_attempt_sleeps_exactly_base_delay(self):
        policy = RetryPolicy(attempts=1, base_delay=0.03, growth=7.0,
                             jitter=0.0)
        assert policy.delay(0) == 0.03

    def test_negative_attempts_rejected(self):
        import pytest

        from repro.util.errors import ReproError
        with pytest.raises(ReproError, match="negative"):
            RetryPolicy(attempts=-1)

    def test_negative_delays_rejected(self):
        import pytest

        from repro.util.errors import ReproError
        with pytest.raises(ReproError, match="negative"):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ReproError, match="negative"):
            RetryPolicy(max_delay=-0.1)

    def test_jitter_outside_unit_interval_rejected(self):
        import pytest

        from repro.util.errors import ReproError
        with pytest.raises(ReproError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ReproError, match="jitter"):
            RetryPolicy(jitter=-0.1)

    def test_full_jitter_never_escapes_the_cap(self):
        policy = RetryPolicy(attempts=8, base_delay=0.1, growth=10.0,
                             max_delay=0.2, jitter=1.0)
        rng = random.Random(99)
        for attempt in range(8):
            for _ in range(200):
                delay = policy.delay(attempt, rng)
                assert 0.0 <= delay <= policy.max_delay

    def test_cap_applies_before_and_after_jitter(self):
        # nominal is capped first, then the jittered value is capped again:
        # even +jitter on an at-cap nominal cannot exceed max_delay.
        policy = RetryPolicy(attempts=1, base_delay=1.0, growth=2.0,
                             max_delay=0.5, jitter=0.5)
        rng = random.Random(7)
        assert all(policy.delay(0, rng) <= 0.5 for _ in range(100))

    def test_growth_below_one_decays(self):
        policy = RetryPolicy(attempts=3, base_delay=0.08, growth=0.5,
                             max_delay=1.0, jitter=0.0)
        assert [policy.delay(a) for a in range(3)] == [0.08, 0.04, 0.02]


class TestStorePassThrough:
    """The store's retry loop honours the policy's edges."""

    def _message(self):
        from repro.transport.messages import InfoType, Layer, UDPMessage
        return UDPMessage(jobid="1", stepid="0", pid=1, path_hash="h",
                          host="n1", time=1, layer=Layer.SELF,
                          info_type=InfoType.PROCINFO, content="x")

    def test_non_retryable_error_passes_through_untouched(self):
        import sqlite3

        import pytest

        from repro.db.store import MessageStore
        store = MessageStore(retry=RetryPolicy(attempts=8, base_delay=0.0))
        store._sleep = lambda _: None
        calls = []

        def injector(operation):
            calls.append(operation)
            raise sqlite3.OperationalError("database or disk is full")

        store.fault_injector = injector
        with pytest.raises(sqlite3.OperationalError, match="full"):
            store.insert_many([self._message()])
        assert store.write_retries == 0     # not a single retry was burned
        assert len(calls) == 1              # and the write ran exactly once

    def test_zero_attempt_budget_propagates_first_transient(self):
        import sqlite3

        import pytest

        from repro.db.store import MessageStore
        store = MessageStore(retry=NO_RETRY)
        store._sleep = lambda _: None
        calls = []

        def injector(operation):
            calls.append(operation)
            raise sqlite3.OperationalError("database is locked")

        store.fault_injector = injector
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.insert_many([self._message()])
        assert store.write_retries == 0
        assert len(calls) == 1

    def test_one_attempt_budget_retries_exactly_once(self):
        import sqlite3

        import pytest

        from repro.db.store import MessageStore
        store = MessageStore(retry=RetryPolicy(attempts=1, base_delay=0.0))
        store._sleep = lambda _: None
        calls = []

        def injector(operation):
            calls.append(operation)
            raise sqlite3.OperationalError("database is locked")

        store.fault_injector = injector
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            store.insert_many([self._message()])
        assert store.write_retries == 1
        assert len(calls) == 2

    def test_transient_clears_within_budget_and_write_lands(self):
        import sqlite3

        from repro.db.store import MessageStore
        store = MessageStore(retry=RetryPolicy(attempts=3, base_delay=0.0))
        store._sleep = lambda _: None
        failures = iter([True, True])

        def injector(operation):
            if next(failures, False):
                raise sqlite3.OperationalError("database is locked")

        store.fault_injector = injector
        assert store.insert_many([self._message()]) == 1
        assert store.write_retries == 2
        assert store.message_count() == 1
