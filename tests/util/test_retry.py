"""RetryPolicy: the backoff schedule behind store writes and worker restarts."""

import random

from repro.util.retry import NO_RETRY, RetryPolicy


class TestDelaySchedule:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(attempts=10, base_delay=0.01, growth=2.0,
                             max_delay=0.05, jitter=0.0)
        delays = [policy.delay(attempt) for attempt in range(6)]
        assert delays[:3] == [0.01, 0.02, 0.04]
        assert all(delay == 0.05 for delay in delays[3:])

    def test_jitter_stays_within_band_and_cap(self):
        policy = RetryPolicy(attempts=4, base_delay=0.01, growth=2.0,
                             max_delay=0.25, jitter=0.5)
        rng = random.Random(13)
        for attempt in range(4):
            nominal = min(policy.max_delay,
                          policy.base_delay * policy.growth ** attempt)
            for _ in range(50):
                delay = policy.delay(attempt, rng)
                assert 0.5 * nominal <= delay <= min(policy.max_delay, 1.5 * nominal)

    def test_no_rng_means_deterministic_nominal(self):
        policy = RetryPolicy(attempts=2, base_delay=0.02, jitter=0.9)
        assert policy.delay(0) == 0.02

    def test_no_retry_sentinel(self):
        assert NO_RETRY.attempts == 0
