"""Tests for text-table rendering."""

import pytest

from repro.util.tables import TextTable, format_count, render_matrix


class TestFormatCount:
    def test_thousands_separator(self):
        assert format_count(13448) == "13,448"

    def test_float_formatting(self):
        assert format_count(94.75) == "94.8"

    def test_small_int(self):
        assert format_count(7) == "7"


class TestTextTable:
    def test_renders_header_and_rows(self):
        table = TextTable(["User", "Jobs"], title="Table X")
        table.add_row(["user_1", 11782])
        rendered = table.render()
        assert "Table X" in rendered
        assert "user_1" in rendered
        assert "11,782" in rendered

    def test_row_length_mismatch_raises(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_none_rendered_as_dash(self):
        table = TextTable(["a"])
        table.add_row([None])
        assert "-" in table.render().splitlines()[-1]

    def test_bool_rendering(self):
        table = TextTable(["flag"])
        table.add_rows([[True], [False]])
        lines = table.render().splitlines()
        assert lines[-2].strip() == "yes"
        assert lines[-1].strip() == "no"

    def test_columns_aligned(self):
        table = TextTable(["name", "n"])
        table.add_row(["aaaaaaaaaa", 1])
        table.add_row(["b", 22222])
        header, rule, row1, row2 = table.render().splitlines()
        assert len(rule) >= len(header.rstrip())

    def test_str_equals_render(self):
        table = TextTable(["x"])
        table.add_row([1])
        assert str(table) == table.render()


class TestRenderMatrix:
    def test_matrix_cells_present(self):
        rendered = render_matrix(["icon"], ["GCC", "clang"], [[1, 0]], title="Fig")
        assert "icon" in rendered
        assert "GCC" in rendered
        last = rendered.splitlines()[-1]
        assert "1" in last and "0" in last
