"""The error hierarchy: ingest failures stay catchable as transport errors."""

import pytest

from repro.util.errors import (
    CollectionError,
    IngestError,
    ReproError,
    TransportError,
    WorkerCrashError,
)


class TestHierarchy:
    def test_ingest_errors_are_transport_errors(self):
        # Split out of TransportError without breaking existing handlers:
        # every `except TransportError` keeps catching ingest failures.
        assert issubclass(IngestError, TransportError)
        assert issubclass(WorkerCrashError, IngestError)
        assert issubclass(TransportError, ReproError)

    def test_worker_crash_is_not_a_collection_error(self):
        assert not issubclass(WorkerCrashError, CollectionError)

    def test_existing_excepts_keep_working(self):
        with pytest.raises(TransportError):
            raise WorkerCrashError("shard 0 worker died")
        with pytest.raises(ReproError):
            raise IngestError("pool closed")

    def test_messages_round_trip(self):
        error = WorkerCrashError("shard 3 worker died (exit code -9)")
        assert "shard 3" in str(error)
