"""Tests for the deterministic RNG utilities."""

import pytest

from repro.util.rng import SeededRNG, derive_seed


class TestDeriveSeed:
    def test_same_inputs_same_seed(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_different_tags_different_seed(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_order_sensitive(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_different_master_seed(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_result_is_64_bit(self):
        assert 0 <= derive_seed(7, "tag") < 2 ** 64


class TestSeededRNG:
    def test_reproducible_streams(self):
        a = SeededRNG(5)
        b = SeededRNG(5)
        assert [a.randint(0, 100) for _ in range(20)] == [b.randint(0, 100) for _ in range(20)]

    def test_different_seeds_differ(self):
        a = SeededRNG(5)
        b = SeededRNG(6)
        assert [a.randint(0, 10 ** 6) for _ in range(5)] != [b.randint(0, 10 ** 6) for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = SeededRNG(5).fork("corpus", "icon")
        b = SeededRNG(5).fork("corpus", "icon")
        assert a.randint(0, 10 ** 6) == b.randint(0, 10 ** 6)

    def test_fork_decorrelates(self):
        parent = SeededRNG(5)
        child = parent.fork("x")
        assert child.seed != parent.seed

    def test_choice_from_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRNG(1).choice([])

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRNG(1).weighted_choice(["a", "b"], [1.0])

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRNG(3)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_bytes_length_and_determinism(self):
        assert len(SeededRNG(9).bytes(64)) == 64
        assert SeededRNG(9).bytes(64) == SeededRNG(9).bytes(64)

    def test_sample_distinct(self):
        sample = SeededRNG(2).sample(list(range(100)), 10)
        assert len(set(sample)) == 10

    def test_shuffle_is_permutation(self):
        items = list(range(30))
        shuffled = SeededRNG(2).shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(30))  # original untouched

    def test_lognormal_int_minimum(self):
        rng = SeededRNG(4)
        assert all(rng.lognormal_int(0.0, 0.1, minimum=3) >= 3 for _ in range(50))

    def test_uniform_in_range(self):
        rng = SeededRNG(4)
        assert all(1.0 <= rng.uniform(1.0, 2.0) < 2.0 for _ in range(100))

    def test_identifier_format(self):
        ident = SeededRNG(4).identifier("job", width=6)
        prefix, digits = ident.split("_")
        assert prefix == "job" and len(digits) == 6 and digits.isdigit()

    def test_pick_subset_probability_extremes(self):
        rng = SeededRNG(4)
        assert rng.pick_subset(range(10), 0.0) == []
        assert rng.pick_subset(range(10), 1.0) == list(range(10))

    def test_poisson_nonnegative(self):
        rng = SeededRNG(4)
        assert all(rng.poisson(3.0) >= 0 for _ in range(50))
