"""Tests for the stage-timing stopwatch."""

import pickle

from repro.util.timing import NULL_TIMER, StageTimer


class TestSections:
    def test_section_records_time_and_calls(self):
        timer = StageTimer()
        with timer.section("stage"):
            pass
        assert timer.calls("stage") == 1
        assert timer.seconds("stage") >= 0.0

    def test_unentered_stage_reads_zero(self):
        timer = StageTimer()
        assert timer.seconds("never") == 0.0
        assert timer.calls("never") == 0

    def test_distinct_stages_accumulate_independently(self):
        timer = StageTimer()
        for _ in range(3):
            with timer.section("a"):
                pass
        with timer.section("b"):
            pass
        assert timer.calls("a") == 3
        assert timer.calls("b") == 1

    def test_nested_same_name_counts_calls_but_not_time_twice(self):
        timer = StageTimer()
        with timer.section("outer"):
            inner_before = timer.seconds("outer")
            with timer.section("outer"):
                pass
            # The inner exit recorded a call but no elapsed time.
            assert timer.calls("outer") == 1
            assert timer.seconds("outer") == inner_before
        assert timer.calls("outer") == 2
        assert timer.seconds("outer") > 0.0

    def test_nesting_of_different_names_is_inclusive(self):
        timer = StageTimer()
        with timer.section("outer"):
            with timer.section("inner"):
                pass
        assert timer.seconds("outer") >= timer.seconds("inner")

    def test_exception_inside_section_still_records(self):
        timer = StageTimer()
        try:
            with timer.section("stage"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert timer.calls("stage") == 1


class TestDisabled:
    def test_disabled_timer_records_nothing(self):
        timer = StageTimer(enabled=False)
        with timer.section("stage"):
            pass
        timer.add("stage", 1.0)
        assert timer.as_dict() == {}

    def test_disabled_sections_share_one_no_op(self):
        timer = StageTimer(enabled=False)
        assert timer.section("a") is timer.section("b")

    def test_null_timer_is_disabled(self):
        assert NULL_TIMER.enabled is False
        with NULL_TIMER.section("stage"):
            pass
        assert NULL_TIMER.as_dict() == {}


class TestMergeAndSnapshot:
    def test_add_folds_external_time(self):
        timer = StageTimer()
        timer.add("stage", 1.5, calls=3)
        timer.add("stage", 0.5)
        assert timer.seconds("stage") == 2.0
        assert timer.calls("stage") == 4

    def test_merge_from_timer(self):
        left, right = StageTimer(), StageTimer()
        left.add("a", 1.0)
        right.add("a", 2.0, calls=2)
        right.add("b", 3.0)
        left.merge(right)
        assert left.seconds("a") == 3.0
        assert left.calls("a") == 3
        assert left.seconds("b") == 3.0

    def test_merge_from_snapshot_mapping(self):
        source, target = StageTimer(), StageTimer()
        source.add("a", 1.25, calls=5)
        target.merge(source.as_dict())
        assert target.seconds("a") == 1.25
        assert target.calls("a") == 5

    def test_as_dict_sorted_top_cost_first_and_picklable(self):
        timer = StageTimer()
        timer.add("cheap", 0.1)
        timer.add("expensive", 9.0)
        timer.add("middle", 1.0)
        snapshot = timer.as_dict()
        assert list(snapshot) == ["expensive", "middle", "cheap"]
        assert snapshot["expensive"] == {"seconds": 9.0, "calls": 1}
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_clear_drops_stages(self):
        timer = StageTimer()
        timer.add("stage", 1.0)
        timer.clear()
        assert timer.as_dict() == {}
