"""The documentation checker itself is part of the tier-1 surface.

Running it here means a PR that breaks a README link or renames an example
fails the test suite locally, not just the CI docs job.
"""

import importlib.util
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "scripts" / "check_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repository_documentation_is_clean(check_docs):
    errors = []
    for doc in check_docs.DOC_FILES:
        errors.extend(check_docs.check_file(check_docs.REPO_ROOT / doc))
    assert errors == []


def test_checker_detects_stale_references(check_docs, tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "[dead](missing.md) and `examples/does_not_exist.py`\n"
        "```python\nfrom repro import NotARealName\n```\n",
        encoding="utf-8")
    errors = check_docs.check_file(bad)
    assert len(errors) == 3


def test_main_exit_status(check_docs):
    assert check_docs.main() == 0
