"""Tests for the process-parallel campaign driver (``campaign_workers > 1``).

The determinism contract under test: a parallel run's consolidated records,
Slurm accounting and operational counters must be equivalent to the serial
driver's -- identical record order in batch mode, a canonical permutation in
streaming mode (arrival interleaving across users differs by design).
"""

import pytest

from repro.core import SirenConfig, SirenFramework
from repro.faults.plan import ChannelFaultProfile, FaultPlan, StoreFaultProfile
from repro.util.errors import CollectionError
from repro.workload import CampaignConfig, DeploymentCampaign
from repro.workload.parallel import partition_plans, plan_profiles
from repro.workload.profiles import DEFAULT_PROFILES

#: A subset keeps each extra campaign run fast (pattern of the streaming
#: equivalence suite); partitioning still gets several profiles to balance.
PROFILES = DEFAULT_PROFILES[:4]


def _run(workers=1, *, seed=17, scale=0.0, loss_rate=0.01, profiles=PROFILES,
         **overrides):
    config = CampaignConfig(scale=scale, seed=seed, loss_rate=loss_rate,
                            campaign_workers=workers, **overrides)
    return DeploymentCampaign(config=config, profiles=profiles).run()


def _batch_canon(records):
    """Order-sensitive canonical form: batch-mode parallel must match exactly."""
    return [tuple(getattr(r, name) for name in r.__dataclass_fields__)
            for r in records]


def _sorted_canon(records):
    """Order-insensitive form for streaming mode (a permutation by design)."""
    return sorted(_batch_canon(records))


class TestValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(CollectionError, match="campaign_workers"):
            DeploymentCampaign(CampaignConfig(campaign_workers=0)).prepare()

    def test_channel_faults_do_not_merge(self):
        plan = FaultPlan(channel=ChannelFaultProfile(reorder_rate=0.1))
        config = CampaignConfig(campaign_workers=2, fault_plan=plan)
        with pytest.raises(CollectionError, match="channel fault"):
            DeploymentCampaign(config).prepare()

    def test_store_faults_still_allowed(self):
        plan = FaultPlan(store=StoreFaultProfile(error_rate=0.01))
        config = CampaignConfig(scale=0.0, campaign_workers=2, fault_plan=plan)
        campaign = DeploymentCampaign(config, profiles=PROFILES)
        campaign.prepare()  # parent-side faults merge fine

    def test_siren_config_rejects_zero_workers(self):
        with pytest.raises(CollectionError, match="campaign_workers"):
            SirenFramework(SirenConfig(campaign_workers=0))

    def test_siren_config_rejects_channel_faults_with_workers(self):
        plan = FaultPlan(channel=ChannelFaultProfile(drop_rate=0.1))
        with pytest.raises(CollectionError, match="channel fault"):
            SirenFramework(SirenConfig(campaign_workers=2, fault_plan=plan))

    def test_sink_mode_campaign_cannot_run(self):
        campaign = DeploymentCampaign(CampaignConfig(scale=0.0),
                                      datagram_sink=lambda datagram: None)
        with pytest.raises(CollectionError, match="sink"):
            campaign.run()


class TestPlanning:
    def test_offsets_are_prefix_sums(self):
        config = CampaignConfig(scale=0.0, seed=3)
        plans = plan_profiles(config, PROFILES)
        job = pid = clock = inode = 0
        for plan in plans:
            assert (plan.job_offset, plan.pid_offset,
                    plan.clock_offset, plan.inode_offset) == (job, pid, clock, inode)
            job += plan.jobs
            pid += plan.pids
            clock += plan.clock
            inode += plan.inodes

    def test_plan_is_deterministic(self):
        config = CampaignConfig(scale=0.0, seed=3)
        assert plan_profiles(config, PROFILES) == plan_profiles(config, PROFILES)

    def test_partition_covers_each_profile_once(self):
        plans = plan_profiles(CampaignConfig(scale=0.0, seed=3), PROFILES)
        assignments = partition_plans(plans, 3)
        flat = sorted(index for assignment in assignments for index in assignment)
        assert flat == list(range(len(plans)))
        assert all(assignment == sorted(assignment) for assignment in assignments)

    def test_partition_drops_empty_workers(self):
        plans = plan_profiles(CampaignConfig(scale=0.0, seed=3), PROFILES)
        assignments = partition_plans(plans, 32)
        assert len(assignments) <= len(plans)
        assert all(assignments)


class TestEquivalence:
    @pytest.mark.parametrize("seed,loss_rate", [(17, 0.01), (99, 0.0)])
    def test_batch_mode_records_identical_in_order(self, seed, loss_rate):
        serial = _run(1, seed=seed, loss_rate=loss_rate)
        parallel = _run(3, seed=seed, loss_rate=loss_rate)
        assert _batch_canon(parallel.records) == _batch_canon(serial.records)

    def test_streaming_thread_shards_match_serial(self):
        kwargs = dict(seed=23, loss_rate=0.01, ingest_mode="streaming",
                      ingest_shards=2, keep_raw_messages=False)
        serial = _run(1, **kwargs)
        parallel = _run(3, **kwargs)
        assert _sorted_canon(parallel.records) == _sorted_canon(serial.records)

    def test_streaming_process_shards_match_serial(self):
        kwargs = dict(seed=23, loss_rate=0.0, ingest_mode="streaming",
                      ingest_shards=2, ingest_workers="process",
                      keep_raw_messages=False)
        serial = _run(1, **kwargs)
        parallel = _run(2, **kwargs)
        assert _sorted_canon(parallel.records) == _sorted_canon(serial.records)

    def test_counters_and_accounting_match_serial(self):
        serial = _run(1, seed=41)
        parallel = _run(3, seed=41)
        assert parallel.jobs_run == serial.jobs_run
        assert parallel.processes_run == serial.processes_run
        assert parallel.channel.datagrams_dropped == serial.channel.datagrams_dropped
        serial_jobs = [(j.job_id, j.user, j.name, j.node, j.submit_time,
                        j.end_time, j.process_count, j.step_count)
                       for j in serial.cluster.scheduler.jobs]
        parallel_jobs = [(j.job_id, j.user, j.name, j.node, j.submit_time,
                          j.end_time, j.process_count, j.step_count)
                         for j in parallel.cluster.scheduler.jobs]
        assert parallel_jobs == serial_jobs
        serial_stats = serial.statistics()
        parallel_stats = parallel.statistics()
        assert set(parallel_stats) == set(serial_stats)
        # Digest caches start cold in every worker, so only the cache-hit
        # accounting may drift; everything observable must match.
        for key in ("jobs_run", "processes_run", "records", "datagrams_sent",
                    "messages_sent", "processes_collected", "incomplete_fraction"):
            assert parallel_stats[key] == serial_stats[key], key

    def test_workers_beyond_profiles_clamp(self):
        serial = _run(1, seed=5, loss_rate=0.0, profiles=DEFAULT_PROFILES[:2])
        parallel = _run(8, seed=5, loss_rate=0.0, profiles=DEFAULT_PROFILES[:2])
        assert _batch_canon(parallel.records) == _batch_canon(serial.records)

    def test_on_job_fires_for_every_job(self):
        config = CampaignConfig(scale=0.0, seed=7, loss_rate=0.0,
                                campaign_workers=3)
        campaign = DeploymentCampaign(config, profiles=PROFILES)
        seen = []
        campaign.on_job = seen.append
        result = campaign.run()
        assert len(seen) == result.jobs_run
        assert seen[-1] == result.jobs_run


class TestProfiling:
    def test_stage_timings_surface_in_result(self):
        result = _run(1, seed=11, loss_rate=0.0)
        timings = result.stage_timings
        for stage in ("campaign.prepare", "campaign.jobs", "campaign.finalize",
                      "cluster.run_job", "collect.start", "collect.end",
                      "transport.encode", "transport.send"):
            assert stage in timings, stage
            assert timings[stage]["calls"] >= 1
            assert timings[stage]["seconds"] >= 0.0

    def test_parallel_run_merges_worker_timings(self):
        result = _run(2, seed=11, loss_rate=0.0)
        timings = result.stage_timings
        assert "driver.feed" in timings
        # Worker-side stages were merged back into the parent's timer.
        assert timings["cluster.run_job"]["calls"] == result.jobs_run

    def test_statistics_expose_cache_effectiveness(self):
        result = _run(1, seed=11, loss_rate=0.0)
        stats = result.statistics()
        for key in ("hashes_computed", "hash_cache_hits",
                    "hash_content_cache_hits", "hash_cache_hit_rate",
                    "compare_cache_hits", "compare_cache_misses"):
            assert key in stats, key
        assert stats["hash_cache_hits"] > 0
        assert 0.0 <= stats["hash_cache_hit_rate"] <= 1.0
