"""Tests for the user profiles and the scenario builder."""

import pytest

from repro.corpus.packages import PACKAGES_BY_NAME
from repro.corpus.python_env import PYTHON_INTERPRETERS_BY_NAME, PYTHON_PACKAGES_BY_NAME
from repro.corpus.system_tools import SYSTEM_TOOLS_BY_NAME
from repro.workload.profiles import (
    BASH_ENVIRONMENT_QUIRKS,
    DEFAULT_PROFILES,
    PROFILES_BY_NAME,
    packages_used_by,
)
from repro.workload.scenarios import ScenarioBuilder
from repro.corpus.builder import CorpusBuilder
from repro.hpcsim.cluster import Cluster


class TestProfiles:
    def test_twelve_users(self):
        assert len(DEFAULT_PROFILES) == 12
        assert {profile.username for profile in DEFAULT_PROFILES} == {
            f"user_{index}" for index in range(1, 13)}

    def test_job_counts_follow_table2_ordering(self):
        """user_1 dominates job counts; user_7 and user_12 submit a single job."""
        by_name = {profile.username: profile.job_count for profile in DEFAULT_PROFILES}
        assert by_name["user_1"] == max(by_name.values())
        assert by_name["user_7"] == 1 and by_name["user_12"] == 1
        assert sum(by_name.values()) == 13_448  # the paper's total job count

    def test_user1_runs_only_system_tools(self):
        profile = PROFILES_BY_NAME["user_1"]
        for template in profile.templates:
            assert not template.app_runs and not template.python_runs

    def test_user6_never_uses_system_directories(self):
        profile = PROFILES_BY_NAME["user_6"]
        for template in profile.templates:
            assert template.system_calls == ()
            assert template.app_runs

    def test_referenced_tools_packages_interpreters_exist(self):
        for profile in DEFAULT_PROFILES:
            for template in profile.templates:
                for tool, count in template.system_calls:
                    assert tool in SYSTEM_TOOLS_BY_NAME
                    assert count >= 1
                for run in template.app_runs:
                    package = PACKAGES_BY_NAME[run.package]
                    assert any(v.variant_id == run.variant_id for v in package.variants)
                for run in template.python_runs:
                    assert run.interpreter in PYTHON_INTERPRETERS_BY_NAME
                    for name in run.packages:
                        assert name in PYTHON_PACKAGES_BY_NAME

    def test_label_user_multiplicity_matches_table5(self):
        """LAMMPS and GROMACS are shared by two users; the rest have one owner."""
        owners: dict[str, set[str]] = {}
        for profile in DEFAULT_PROFILES:
            for package in packages_used_by(profile):
                owners.setdefault(package, set()).add(profile.username)
        assert len(owners["LAMMPS"]) == 2
        assert len(owners["GROMACS"]) == 2
        assert len(owners["icon"]) == 1
        assert len(owners["amber"]) == 1
        assert len(owners["janko"]) == 1

    def test_python_interpreter_user_counts_match_table8(self):
        interpreter_users: dict[str, set[str]] = {}
        for profile in DEFAULT_PROFILES:
            for template in profile.templates:
                for run in template.python_runs:
                    interpreter_users.setdefault(run.interpreter, set()).add(profile.username)
        assert len(interpreter_users["python3.10"]) == 2
        assert len(interpreter_users["python3.6"]) == 1
        assert len(interpreter_users["python3.11"]) == 1

    def test_quirk_users_exist(self):
        for username in BASH_ENVIRONMENT_QUIRKS:
            assert username in PROFILES_BY_NAME

    def test_template_weights_positive(self):
        for profile in DEFAULT_PROFILES:
            assert all(weight > 0 for weight in profile.template_weights())


class TestScenarioBuilder:
    @pytest.fixture(scope="class")
    def builder_env(self):
        cluster = Cluster()
        corpus = CorpusBuilder(cluster)
        manifest = corpus.install_base_system()
        for profile in DEFAULT_PROFILES:
            user = cluster.add_user(profile.username)
            for package_name in packages_used_by(profile):
                corpus.install_package(PACKAGES_BY_NAME[package_name], user)
        return cluster, manifest, ScenarioBuilder(cluster, manifest)

    def test_job_script_structure(self, builder_env):
        cluster, manifest, builder = builder_env
        profile = PROFILES_BY_NAME["user_8"]
        template = profile.templates[0]
        user = cluster.users.get("user_8")
        script = builder.build_job_script(profile, template, user)
        assert script.name.startswith("user_8-")
        assert "siren" in script.modules
        assert script.total_processes > 0
        executables = [spec.executable for step in script.steps for spec in step.processes]
        assert manifest.tool("bash") in executables
        assert any("icon" in path for path in executables)

    def test_required_stack_modules_included(self, builder_env):
        cluster, manifest, builder = builder_env
        profile = PROFILES_BY_NAME["user_8"]
        template = profile.templates[0]  # icon-coupled
        user = cluster.users.get("user_8")
        script = builder.build_job_script(profile, template, user)
        assert "climatedt" in script.modules

    def test_quirk_module_appended(self, builder_env):
        cluster, _, builder = builder_env
        profile = PROFILES_BY_NAME["user_2"]
        user = cluster.users.get("user_2")
        script = builder.build_job_script(profile, profile.templates[0], user,
                                          quirk_module="libtinfo-spack")
        assert "libtinfo-spack" in script.modules

    def test_python_scripts_created_and_varied(self, builder_env):
        cluster, _, builder = builder_env
        profile = PROFILES_BY_NAME["user_5"]
        template = next(t for t in profile.templates if t.python_runs)
        user = cluster.users.get("user_5")
        first = builder.build_job_script(profile, template, user, job_index=0)
        second = builder.build_job_script(profile, template, user, job_index=1)
        script_paths = set()
        for script in (first, second):
            for step in script.steps:
                for spec in step.processes:
                    if spec.python_script:
                        script_paths.add(spec.python_script)
                        assert cluster.filesystem.exists(spec.python_script)
                        assert spec.mapped_files
        # user_5 varies scripts every job, so two jobs -> two distinct scripts.
        assert len(script_paths) == 2

    def test_stable_scripts_for_periodic_users(self, builder_env):
        cluster, _, builder = builder_env
        profile = PROFILES_BY_NAME["user_4"]
        template = next(t for t in profile.templates if t.python_runs)
        user = cluster.users.get("user_4")
        paths = set()
        for job_index in (0, 1, 2):
            script = builder.build_job_script(profile, template, user, job_index=job_index)
            for step in script.steps:
                for spec in step.processes:
                    if spec.python_script:
                        paths.add(spec.python_script)
        # Variation period for user_4 is 12 jobs, so the first three reuse scripts.
        per_tag = len({run.script_tag for run in template.python_runs})
        assert len(paths) == per_tag
