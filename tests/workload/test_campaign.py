"""Tests for the deployment-campaign runner."""

import pytest

from repro.collector.classify import ExecutableCategory
from repro.core import AnalysisPipeline
from repro.util.errors import CollectionError
from repro.workload import CampaignConfig, DeploymentCampaign
from repro.workload.profiles import DEFAULT_PROFILES, PROFILES_BY_NAME


def _record_list(records):
    """Order-sensitive canonical form (streaming must match batch exactly)."""
    return [tuple(getattr(r, name) for name in r.__dataclass_fields__)
            for r in records]


class TestCampaignConfig:
    def test_jobs_scale(self):
        config = CampaignConfig(scale=0.01, ensure_template_coverage=False)
        assert config.jobs_for(PROFILES_BY_NAME["user_1"]) == round(11_782 * 0.01)
        assert config.jobs_for(PROFILES_BY_NAME["user_12"]) == 1

    def test_template_coverage_lifts_minimum(self):
        config = CampaignConfig(scale=0.0001, ensure_template_coverage=True)
        profile = PROFILES_BY_NAME["user_8"]
        assert config.jobs_for(profile) >= len(profile.templates)


class TestCampaignExecution:
    def test_shared_campaign_basic_invariants(self, campaign_result):
        result = campaign_result
        assert result.jobs_run == result.cluster.scheduler.job_count
        assert result.processes_run > 1000
        assert len(result.records) > 0
        # Only rank-0 processes are collected, so records < processes.
        assert len(result.records) <= result.processes_run
        assert result.collector.processes_collected == \
            result.processes_run - result.collector.processes_skipped
        assert result.cluster.runtime.hook_failures == 0

    def test_all_twelve_users_present(self, campaign_result):
        assert len(campaign_result.user_names) == 12
        assert set(campaign_result.user_names.values()) == {
            f"user_{index}" for index in range(1, 13)}

    def test_all_categories_observed(self, campaign_result):
        categories = {record.category for record in campaign_result.records if record.category}
        assert categories == {c.value for c in ExecutableCategory}

    def test_udp_loss_produces_small_incomplete_fraction(self, campaign_result):
        assert campaign_result.channel.datagrams_dropped >= 0
        assert campaign_result.incomplete_fraction < 0.02

    def test_unknown_icon_instance_present(self, campaign_result):
        unknown = [record for record in campaign_result.records
                   if record.executable.endswith("/a.out")]
        assert unknown
        assert all(record.category == "user" for record in unknown)

    def test_determinism_of_small_campaign(self):
        config = CampaignConfig(scale=0.0, seed=7, min_jobs_per_user=1)
        first = DeploymentCampaign(config=config).run()
        second = DeploymentCampaign(config=config).run()
        assert first.jobs_run == second.jobs_run
        assert first.processes_run == second.processes_run
        assert len(first.records) == len(second.records)
        first_exes = sorted(record.executable for record in first.records)
        second_exes = sorted(record.executable for record in second.records)
        assert first_exes == second_exes

    def test_prepare_is_idempotent(self):
        campaign = DeploymentCampaign(CampaignConfig(scale=0.0))
        campaign.prepare()
        manifest = campaign.manifest
        campaign.prepare()
        assert campaign.manifest is manifest

    def test_zero_loss_campaign_has_no_incomplete_records(self):
        config = CampaignConfig(scale=0.0, seed=3, loss_rate=0.0)
        result = DeploymentCampaign(config=config).run()
        assert result.incomplete_fraction == 0.0


class TestStreamingIngest:
    """The streaming ingest spine: equivalence, snapshots, real sockets."""

    #: A small subset keeps each extra campaign run fast; the shared
    #: campaign fixture already exercises the full 12-user batch path.
    PROFILES = DEFAULT_PROFILES[:4]

    def _run(self, *, loss_rate: float, ingest_mode: str = "batch",
             ingest_shards: int = 1, transport: str = "memory", seed: int = 17,
             **overrides):
        config = CampaignConfig(scale=0.0, seed=seed, loss_rate=loss_rate,
                                ingest_mode=ingest_mode, ingest_shards=ingest_shards,
                                transport=transport, **overrides)
        return DeploymentCampaign(config=config, profiles=self.PROFILES).run()

    @pytest.mark.parametrize("loss_rate", [0.0, 0.0002, 0.01])
    def test_streaming_identical_to_batch(self, loss_rate):
        batch = self._run(loss_rate=loss_rate)
        streaming = self._run(loss_rate=loss_rate, ingest_mode="streaming",
                              keep_raw_messages=False)
        assert _record_list(streaming.records) == _record_list(batch.records)
        assert streaming.ingest is not None
        assert streaming.ingest.records_built == len(batch.records)
        # Pure streaming never materialised the raw messages table.
        assert streaming.store.message_count() == 0
        assert batch.store.message_count() > 0

    def test_sharded_streaming_identical_to_batch(self):
        batch = self._run(loss_rate=0.01)
        sharded = self._run(loss_rate=0.01, ingest_mode="streaming", ingest_shards=4,
                            keep_raw_messages=False)
        assert _record_list(sharded.records) == _record_list(batch.records)
        stats = sharded.ingest.statistics()
        assert stats["shards"] == 4
        assert stats["records_built"] == len(batch.records)
        # Streaming held far fewer groups open than the total process count.
        assert 0 < sharded.ingest.peak_open_processes < len(batch.records)

    def test_streaming_keeps_raw_messages_when_asked(self):
        streaming = self._run(loss_rate=0.0, ingest_mode="streaming",
                              keep_raw_messages=True)
        assert streaming.store.message_count() > 0
        assert streaming.store.process_count() == len(streaming.records)

    def test_mid_run_snapshot_is_analyzable(self):
        config = CampaignConfig(scale=0.0, seed=4, loss_rate=0.0002,
                                ingest_mode="streaming", ingest_shards=2,
                                keep_raw_messages=False)
        campaign = DeploymentCampaign(config=config, profiles=self.PROFILES)
        snapshots: list[list] = []

        def on_job(jobs_run: int) -> None:
            if jobs_run == 5:
                snapshots.append(campaign.snapshot())

        campaign.on_job = on_job
        result = campaign.run()
        (snapshot,) = snapshots
        assert 0 < len(snapshot) < len(result.records)
        rows = AnalysisPipeline(snapshot, result.user_names).table2_user_activity()
        assert rows and sum(row.total_processes for row in rows) > 0
        # Every snapshotted process key is present in the final record set.
        final_keys = {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time)
                      for r in result.records}
        assert {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time)
                for r in snapshot} <= final_keys

    def test_socket_transport_end_to_end(self):
        """Sender -> real loopback UDP -> sharded receivers == in-memory batch."""
        batch = self._run(loss_rate=0.0, seed=9)
        socketed = self._run(loss_rate=0.0, seed=9, transport="socket",
                             ingest_mode="streaming", ingest_shards=2,
                             keep_raw_messages=False)
        assert _record_list(socketed.records) == _record_list(batch.records)
        assert socketed.ingest.decode_errors == 0
        assert socketed.incomplete_fraction == 0.0

    def test_invalid_ingest_mode_rejected(self):
        with pytest.raises(CollectionError):
            DeploymentCampaign(CampaignConfig(ingest_mode="firehose")).prepare()

    def test_invalid_transport_rejected(self):
        with pytest.raises(CollectionError):
            DeploymentCampaign(CampaignConfig(transport="carrier-pigeon")).prepare()


class TestHashingKnobs:
    def test_knobs_reach_the_collector(self):
        config = CampaignConfig(scale=0.0, hash_engine=False,
                                hash_content_cache=False, hash_concurrency=3)
        campaign = DeploymentCampaign(config=config)
        campaign.prepare()
        collector = campaign.collector
        assert collector.hash_engine is False
        assert collector.hasher.hasher.use_engine is False
        assert collector.hasher.content_cache_enabled is False
        assert collector.hasher.hash_concurrency == 3

    def test_engine_and_reference_campaigns_produce_identical_records(self):
        """The single-pass engine is byte-identical, so entire campaign
        outputs (every digest in every record) must match the seed path."""
        results = {}
        for engine in (True, False):
            config = CampaignConfig(scale=0.0, seed=11, loss_rate=0.0,
                                    hash_engine=engine)
            result = DeploymentCampaign(config=config).run()
            results[engine] = sorted(
                (record.executable, record.file_h, record.strings_h,
                 record.symbols_h, record.objects_h)
                for record in result.records)
        assert results[True] == results[False]

    def test_content_cache_leaves_records_unchanged(self):
        snapshots = {}
        for cache in (True, False):
            config = CampaignConfig(scale=0.0, seed=13, loss_rate=0.0,
                                    hash_content_cache=cache)
            result = DeploymentCampaign(config=config).run()
            snapshots[cache] = sorted(
                (record.executable, record.file_h) for record in result.records)
        assert snapshots[True] == snapshots[False]
