"""Tests for the deployment-campaign runner."""

import pytest

from repro.collector.classify import ExecutableCategory
from repro.workload import CampaignConfig, DeploymentCampaign
from repro.workload.profiles import PROFILES_BY_NAME


class TestCampaignConfig:
    def test_jobs_scale(self):
        config = CampaignConfig(scale=0.01, ensure_template_coverage=False)
        assert config.jobs_for(PROFILES_BY_NAME["user_1"]) == round(11_782 * 0.01)
        assert config.jobs_for(PROFILES_BY_NAME["user_12"]) == 1

    def test_template_coverage_lifts_minimum(self):
        config = CampaignConfig(scale=0.0001, ensure_template_coverage=True)
        profile = PROFILES_BY_NAME["user_8"]
        assert config.jobs_for(profile) >= len(profile.templates)


class TestCampaignExecution:
    def test_shared_campaign_basic_invariants(self, campaign_result):
        result = campaign_result
        assert result.jobs_run == result.cluster.scheduler.job_count
        assert result.processes_run > 1000
        assert len(result.records) > 0
        # Only rank-0 processes are collected, so records < processes.
        assert len(result.records) <= result.processes_run
        assert result.collector.processes_collected == \
            result.processes_run - result.collector.processes_skipped
        assert result.cluster.runtime.hook_failures == 0

    def test_all_twelve_users_present(self, campaign_result):
        assert len(campaign_result.user_names) == 12
        assert set(campaign_result.user_names.values()) == {
            f"user_{index}" for index in range(1, 13)}

    def test_all_categories_observed(self, campaign_result):
        categories = {record.category for record in campaign_result.records if record.category}
        assert categories == {c.value for c in ExecutableCategory}

    def test_udp_loss_produces_small_incomplete_fraction(self, campaign_result):
        assert campaign_result.channel.datagrams_dropped >= 0
        assert campaign_result.incomplete_fraction < 0.02

    def test_unknown_icon_instance_present(self, campaign_result):
        unknown = [record for record in campaign_result.records
                   if record.executable.endswith("/a.out")]
        assert unknown
        assert all(record.category == "user" for record in unknown)

    def test_determinism_of_small_campaign(self):
        config = CampaignConfig(scale=0.0, seed=7, min_jobs_per_user=1)
        first = DeploymentCampaign(config=config).run()
        second = DeploymentCampaign(config=config).run()
        assert first.jobs_run == second.jobs_run
        assert first.processes_run == second.processes_run
        assert len(first.records) == len(second.records)
        first_exes = sorted(record.executable for record in first.records)
        second_exes = sorted(record.executable for record in second.records)
        assert first_exes == second_exes

    def test_prepare_is_idempotent(self):
        campaign = DeploymentCampaign(CampaignConfig(scale=0.0))
        campaign.prepare()
        manifest = campaign.manifest
        campaign.prepare()
        assert campaign.manifest is manifest

    def test_zero_loss_campaign_has_no_incomplete_records(self):
        config = CampaignConfig(scale=0.0, seed=3, loss_rate=0.0)
        result = DeploymentCampaign(config=config).run()
        assert result.incomplete_fraction == 0.0


class TestHashingKnobs:
    def test_knobs_reach_the_collector(self):
        config = CampaignConfig(scale=0.0, hash_engine=False,
                                hash_content_cache=False, hash_concurrency=3)
        campaign = DeploymentCampaign(config=config)
        campaign.prepare()
        collector = campaign.collector
        assert collector.hash_engine is False
        assert collector.hasher.hasher.use_engine is False
        assert collector.hasher.content_cache_enabled is False
        assert collector.hasher.hash_concurrency == 3

    def test_engine_and_reference_campaigns_produce_identical_records(self):
        """The single-pass engine is byte-identical, so entire campaign
        outputs (every digest in every record) must match the seed path."""
        results = {}
        for engine in (True, False):
            config = CampaignConfig(scale=0.0, seed=11, loss_rate=0.0,
                                    hash_engine=engine)
            result = DeploymentCampaign(config=config).run()
            results[engine] = sorted(
                (record.executable, record.file_h, record.strings_h,
                 record.symbols_h, record.objects_h)
                for record in result.records)
        assert results[True] == results[False]

    def test_content_cache_leaves_records_unchanged(self):
        snapshots = {}
        for cache in (True, False):
            config = CampaignConfig(scale=0.0, seed=13, loss_rate=0.0,
                                    hash_content_cache=cache)
            result = DeploymentCampaign(config=config).run()
            snapshots[cache] = sorted(
                (record.executable, record.file_h) for record in result.records)
        assert snapshots[True] == snapshots[False]
