"""Integration tests asserting the paper's qualitative claims on campaign data.

These tests check the *shape* of the paper's evaluation results (orderings,
who-uses-what relationships, similarity patterns), not absolute LUMI counts:
the shared fixture runs the campaign at a small scale.
"""

from repro.analysis.labels import UNKNOWN_LABEL
from repro.analysis.similarity import HASH_COLUMNS
from repro.collector.classify import ExecutableCategory


class TestTable2Claims:
    def test_user1_dominates_jobs_and_runs_only_system_executables(self, pipeline):
        rows = pipeline.table2_user_activity()
        by_user = {row.user: row for row in rows}
        top = rows[0]
        assert top.user == "user_1"
        assert by_user["user_1"].user_processes == 0
        assert by_user["user_1"].python_processes == 0

    def test_user6_has_no_system_processes(self, pipeline):
        by_user = {row.user: row for row in pipeline.table2_user_activity()}
        assert by_user["user_6"].system_processes == 0
        assert by_user["user_6"].user_processes > 0

    def test_user4_mixes_python_and_user_executables(self, pipeline):
        by_user = {row.user: row for row in pipeline.table2_user_activity()}
        assert by_user["user_4"].python_processes > 0
        assert by_user["user_4"].user_processes > 0

    def test_system_processes_dominate_overall(self, pipeline):
        totals = pipeline.table2_totals()
        assert totals.system_processes > totals.user_processes
        assert totals.system_processes > totals.python_processes


class TestTable3Claims:
    def test_srun_used_by_most_but_not_all_users(self, pipeline, campaign_result):
        rows = pipeline.table3_system_executables(top=None)
        by_name = {row.executable.rsplit('/', 1)[-1]: row for row in rows}
        total_users = len(campaign_result.user_names)
        assert by_name["srun"].unique_users < total_users
        assert by_name["srun"].unique_users >= total_users // 2

    def test_mkdir_and_rm_have_highest_process_counts(self, pipeline):
        rows = pipeline.table3_system_executables(top=None)
        by_name = {row.executable.rsplit('/', 1)[-1]: row for row in rows}
        max_processes = max(row.process_count for row in rows)
        assert max(by_name["mkdir"].process_count, by_name["rm"].process_count) == max_processes

    def test_bash_has_multiple_library_variants(self, pipeline):
        rows = pipeline.table3_system_executables(top=None)
        bash = next(row for row in rows if row.executable.endswith("/bash"))
        assert bash.unique_objects_h >= 2


class TestTable4Claims:
    def test_bash_variants_differ_in_libtinfo_and_libm(self, pipeline):
        rows = pipeline.table4_shared_object_variants("bash")
        assert len(rows) >= 2
        # The dominant variant uses the system libtinfo and no libm.
        assert rows[0].distinguishing["libtinfo"].startswith("/lib64/")
        assert rows[0].distinguishing["libm"] == ""
        # Some variant resolves libtinfo from a non-default install.
        alternative_paths = {row.distinguishing["libtinfo"] for row in rows[1:]}
        assert any(not path.startswith("/lib64/") for path in alternative_paths if path)


class TestTable5Claims:
    def test_lammps_and_gromacs_shared_by_two_users(self, pipeline):
        by_label = {row.label: row for row in pipeline.table5_user_applications()}
        assert by_label["LAMMPS"].unique_users == 2
        assert by_label["GROMACS"].unique_users == 2

    def test_gromacs_single_executable_icon_many(self, pipeline):
        by_label = {row.label: row for row in pipeline.table5_user_applications()}
        assert by_label["GROMACS"].unique_file_h == 1
        assert by_label["icon"].unique_file_h > by_label["GROMACS"].unique_file_h
        assert by_label["icon"].unique_users == 1

    def test_unknown_label_exists_with_single_user(self, pipeline):
        by_label = {row.label: row for row in pipeline.table5_user_applications()}
        assert UNKNOWN_LABEL in by_label
        assert by_label[UNKNOWN_LABEL].unique_users == 1


class TestTable6Claims:
    def test_compiler_combinations_match_software(self, pipeline):
        combos = {row.compilers for row in pipeline.table6_compilers()}
        assert ("GCC [SUSE]", "clang [Cray]") in combos            # icon / RadRad
        assert ("GCC [Red Hat]", "GCC [conda]", "rustc") in combos  # miniconda solver
        assert any("LLD [AMD]" in combo for combo in combos)        # GROMACS / LAMMPS / gzip

    def test_multi_compiler_binaries_exist(self, pipeline):
        assert any(len(row.compilers) >= 2 for row in pipeline.table6_compilers())


class TestTable7Claims:
    def test_unknown_identified_as_icon_with_perfect_match(self, pipeline):
        searches = pipeline.table7_similarity_search(top=10)
        aout = next(path for path in searches if path.endswith("a.out"))
        results = searches[aout]
        assert results[0].label == "icon"
        assert results[0].average == 100.0
        assert all(results[0].scores[column] == 100 for column in HASH_COLUMNS)

    def test_similarity_decreases_down_the_ranking(self, pipeline):
        searches = pipeline.table7_similarity_search(top=10)
        for results in searches.values():
            averages = [result.average for result in results]
            assert averages == sorted(averages, reverse=True)

    def test_top_candidates_are_all_icon(self, pipeline):
        searches = pipeline.table7_similarity_search(top=4)
        for results in searches.values():
            assert {result.label for result in results} == {"icon"}

    def test_symbol_hash_is_most_stable_column(self, pipeline):
        """The paper argues global symbols are the most stable identifier."""
        searches = pipeline.table7_similarity_search(top=8)
        for results in searches.values():
            icon_results = [r for r in results if r.label == "icon"]
            mean_sy = sum(r.scores["SY_H"] for r in icon_results) / len(icon_results)
            mean_fi = sum(r.scores["FI_H"] for r in icon_results) / len(icon_results)
            assert mean_sy >= mean_fi


class TestTable8AndFigure3Claims:
    def test_python310_has_most_users_and_script_diversity(self, pipeline):
        rows = {row.interpreter: row for row in pipeline.table8_python_interpreters()}
        assert rows["python3.10"].unique_users == 2
        assert rows["python3.6"].unique_users == 1
        assert rows["python3.11"].unique_users == 1
        assert rows["python3.6"].process_count > rows["python3.10"].process_count

    def test_common_packages_imported_by_all_python_users(self, pipeline):
        rows = {row.package: row for row in pipeline.figure3_python_packages()}
        python_users = max(row.unique_users for row in rows.values())
        for package in ("heapq", "struct", "math"):
            assert rows[package].unique_users == python_users
        for package in ("mpi4py", "pandas", "scipy"):
            assert rows[package].unique_users < python_users


class TestFigure2And5Claims:
    def test_siren_loaded_by_every_user_executable(self, pipeline):
        matrix = pipeline.figure5_library_matrix()
        assert all(matrix.value(label, "siren") == 1 for label in matrix.row_labels)

    def test_climate_libraries_identify_icon(self, pipeline):
        matrix = pipeline.figure5_library_matrix()
        assert matrix.value("icon", "climatedt") == 1
        # The UNKNOWN instances are icon copies, so they legitimately load
        # climatedt too -- that is exactly the "verifying functionality" step
        # of Section 4.3.  No other software label uses the climate stack.
        for label in matrix.row_labels:
            if label not in ("icon", UNKNOWN_LABEL):
                assert matrix.value(label, "climatedt") == 0
        assert matrix.value(UNKNOWN_LABEL, "climatedt") == 1

    def test_rocm_stack_points_to_gpu_applications(self, pipeline):
        matrix = pipeline.figure5_library_matrix()
        assert matrix.value("LAMMPS", "rocfft-rocm-fft") == 1
        assert matrix.value("miniconda", "rocm") == 0

    def test_figure4_matches_package_definitions(self, pipeline):
        matrix = pipeline.figure4_compiler_matrix()
        assert matrix.value("GROMACS", "LLD [AMD]") == 1
        assert matrix.value("icon", "clang [Cray]") == 1
        assert matrix.value("gzip", "GCC [SUSE]") == 0


class TestOperationalClaims:
    def test_loss_fraction_is_tiny(self, campaign_result):
        """Section 3.1 reports ~0.02% of jobs with missing fields."""
        assert campaign_result.incomplete_fraction < 0.02

    def test_rank_zero_selectivity(self, campaign_result):
        skipped = campaign_result.collector.processes_skipped
        collected = campaign_result.collector.processes_collected
        assert skipped > 0
        assert collected + skipped == campaign_result.processes_run

    def test_hashing_cache_effective(self, campaign_result):
        hasher = campaign_result.collector.hasher
        assert hasher.cache_hits > hasher.hashes_computed

    def test_categories_cover_all_records(self, campaign_result):
        complete = [r for r in campaign_result.records if not r.incomplete]
        assert all(r.category in {c.value for c in ExecutableCategory} for r in complete)
