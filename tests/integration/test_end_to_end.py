"""End-to-end integration tests built from the public API (no campaign fixture)."""

from repro.core import AnalysisPipeline, SirenConfig, SirenFramework
from repro.corpus.builder import CorpusBuilder
from repro.corpus.packages import ICON, LAMMPS
from repro.corpus.python_env import extension_paths
from repro.hpcsim.cluster import Cluster
from repro.hpcsim.slurm import JobScript, ProcessSpec, StepSpec
from repro.transport.channel import SocketChannel
from repro.transport.receiver import MessageReceiver
from repro.transport.sender import UDPSender
from repro.collector.hooks import SirenCollector
from repro.db.store import MessageStore
from repro.postprocess.consolidate import consolidate_store


def _standard_setup():
    cluster = Cluster()
    corpus = CorpusBuilder(cluster)
    manifest = corpus.install_base_system()
    user = cluster.add_user("erin")
    corpus.install_package(ICON, user)
    corpus.install_package(LAMMPS, user)
    return cluster, manifest, user


class TestQuickstartFlow:
    """The README quickstart flow: deploy, run a job, consolidate, analyse."""

    def test_full_flow(self):
        cluster, manifest, user = _standard_setup()
        framework = SirenFramework(SirenConfig(loss_rate=0.0))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)

        icon = manifest.find_executable("icon", "cray-r1", "erin")
        unknown = manifest.find_executable("icon", "unknown-copy", "erin")
        script = JobScript(
            name="climate-run",
            modules=("siren", "PrgEnv-cray", "cray-netcdf", *icon.required_modules),
            steps=(StepSpec(processes=(
                ProcessSpec(executable=manifest.tool("bash"), count=3),
                ProcessSpec(executable=manifest.tool("srun")),
                ProcessSpec(executable=icon.path, ranks=4),
                ProcessSpec(executable=unknown.path, ranks=2),
            )),),
        )
        cluster.run_job("erin", script)
        records = framework.consolidate()
        pipeline = AnalysisPipeline(records, cluster.users.anonymize())

        labels = {row.label for row in pipeline.table5_user_applications()}
        assert labels == {"icon", "UNKNOWN"}
        searches = pipeline.table7_similarity_search(top=3)
        assert all(results[0].label == "icon" for results in searches.values())
        assert pipeline.table3_system_executables()

    def test_python_workflow(self):
        cluster, manifest, user = _standard_setup()
        framework = SirenFramework(SirenConfig(loss_rate=0.0))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)

        script_path = f"{user.home}/scripts/postproc.py"
        cluster.filesystem.add_file(script_path, b"import numpy\nimport pandas\n")
        interpreter = manifest.interpreter("python3.11")
        packages = ["heapq", "struct", "numpy", "pandas"]
        job = JobScript(name="py", modules=("siren",), steps=(StepSpec(processes=(
            ProcessSpec(executable=interpreter, argv=(interpreter, script_path),
                        python_script=script_path,
                        imported_packages=tuple(packages),
                        mapped_files=tuple(extension_paths("python3.11", packages))),)),))
        cluster.run_job("erin", job)

        records = framework.consolidate()
        pipeline = AnalysisPipeline(records, cluster.users.anonymize())
        table8 = pipeline.table8_python_interpreters()
        assert table8[0].interpreter == "python3.11"
        assert table8[0].unique_script_h == 1
        figure3 = {row.package for row in pipeline.figure3_python_packages()}
        assert {"heapq", "numpy", "pandas"} <= figure3


class TestRealSocketDeployment:
    """The same collector runs over genuine UDP loopback sockets."""

    def test_socket_transport_end_to_end(self):
        cluster, manifest, user = _standard_setup()
        store = MessageStore()
        with SocketChannel() as channel:
            receiver = MessageReceiver(store)
            receiver.attach(channel)
            collector = SirenCollector(cluster.filesystem, UDPSender(channel),
                                       manifest.siren_library)
            cluster.register_preload_hook(collector)
            icon = manifest.find_executable("icon", "cray-r1", "erin")
            script = JobScript(name="sock", modules=("siren", *icon.required_modules),
                               steps=(StepSpec(processes=(
                                   ProcessSpec(executable=icon.path),
                                   ProcessSpec(executable=manifest.tool("bash"), count=2),)),))
            cluster.run_job("erin", script)
            channel.drain()
            receiver.flush()
        records = consolidate_store(store)
        assert len(records) == 3
        icon_record = next(r for r in records if r.executable.endswith("/icon"))
        assert icon_record.file_h
        assert icon_record.compilers


class TestOptInBehaviour:
    def test_jobs_without_siren_module_are_invisible(self):
        cluster, manifest, user = _standard_setup()
        framework = SirenFramework(SirenConfig(loss_rate=0.0))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        icon = manifest.find_executable("icon", "cray-r1", "erin")
        script = JobScript(name="no-opt-in", modules=tuple(icon.required_modules),
                           steps=(StepSpec(processes=(ProcessSpec(executable=icon.path),)),))
        cluster.run_job("erin", script)
        assert framework.consolidate() == []

    def test_statically_linked_tools_are_invisible(self):
        cluster, manifest, user = _standard_setup()
        framework = SirenFramework(SirenConfig(loss_rate=0.0))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        script = JobScript(name="static", modules=("siren",),
                           steps=(StepSpec(processes=(
                               ProcessSpec(executable=manifest.tool("busybox")),
                               ProcessSpec(executable=manifest.tool("bash")),)),))
        cluster.run_job("erin", script)
        records = framework.consolidate()
        assert len(records) == 1
        assert records[0].executable.endswith("/bash")
