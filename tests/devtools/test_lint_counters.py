"""Counter-registry rules against a toy registry, plus the real-tree gate."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint.counters import CounterRegistryChecker
from repro.util.counters import (COUNTER_PREFIXES, COUNTERS,
                                 assert_registered_counters,
                                 is_registered_counter)

from lint_fixtures import make_module, rules_of

REGISTRY = {"alpha": "first toy counter", "beta": "second toy counter"}
PREFIXES = {"ns_": "namespaced re-exports"}

GOOD = """
def statistics(self):
    stats = {"alpha": self.alpha}
    stats["beta"] = self.beta
    for name, value in self.nested.items():
        stats[f"ns_{name}"] = value
    return stats
"""


def check(source: str, registry=REGISTRY, prefixes=PREFIXES):
    checker = CounterRegistryChecker(registry=registry, prefixes=prefixes)
    return list(checker.check_tree([make_module(source)]))


class TestToyRegistry:
    def test_consistent_emitter_is_clean(self):
        assert check(GOOD) == []

    def test_unregistered_literal_key_fires(self):
        mutated = GOOD.replace('"beta"', '"gamma"')
        findings = check(mutated)
        assert "counters/unregistered" in rules_of(findings)
        assert any("'gamma'" in f.message for f in findings)

    def test_unregistered_fstring_prefix_fires(self):
        mutated = GOOD.replace('f"ns_{name}"', 'f"other_{name}"')
        findings = check(mutated)
        assert rules_of(findings) == ["counters/unregistered-prefix"]

    def test_fully_dynamic_key_fires(self):
        mutated = GOOD.replace('f"ns_{name}"', 'f"{name}"')
        findings = check(mutated)
        assert rules_of(findings) == ["counters/unregistered-prefix"]
        assert "<dynamic>" in findings[0].message

    def test_stale_registration_fires(self):
        mutated = GOOD.replace('stats["beta"] = self.beta', "pass")
        findings = check(mutated)
        assert rules_of(findings) == ["counters/unused-registration"]
        assert "'beta'" in findings[0].message

    def test_non_stats_functions_are_ignored(self):
        source = "def helper(self):\n    return {'gamma': 1}\n"
        # no emitter in scope at all => no unused-registration sweep either
        assert check(source) == []

    def test_variable_keyed_folds_are_ignored(self):
        source = """
def statistics(self):
    merged = {"alpha": 0}
    for name, value in self.parts.items():
        merged[name] = merged.get(name, 0) + value
    return merged
"""
        findings = check(source, registry={"alpha": "doc"}, prefixes={})
        assert findings == []


class TestRuntimeRegistry:
    def test_direct_and_prefixed_keys_are_registered(self):
        assert is_registered_counter("records_built")
        assert is_registered_counter("ingest_records_built")
        assert is_registered_counter("fault_dropped")
        assert not is_registered_counter("made_up_counter")
        assert not is_registered_counter("ingest_made_up_counter")

    def test_assert_registered_counters_names_offenders(self):
        assert_registered_counters({"records_built": 3}, context="test")
        with pytest.raises(AssertionError, match="bogus_key"):
            assert_registered_counters({"bogus_key": 1}, context="test")

    def test_live_campaign_statistics_are_all_registered(self, campaign_result):
        assert_registered_counters(campaign_result.statistics(),
                                   context="CampaignResult.statistics()")


class TestRealTreeGate:
    def test_real_emitters_match_real_registry(self):
        from repro.devtools.lint.engine import iter_python_files, load_module

        root = Path(__file__).resolve().parents[2]
        modules = [load_module(path, root)
                   for path in iter_python_files([root / "src" / "repro"])]
        findings = list(CounterRegistryChecker().check_tree(modules))
        assert findings == []

    def test_registry_docs_exist_for_every_key(self):
        assert all(isinstance(doc, str) and doc for doc in COUNTERS.values())
        assert all(prefix.endswith("_") for prefix in COUNTER_PREFIXES)
