"""Concurrency rules: fork-safe caches, queue liveness, exception hygiene."""

from __future__ import annotations

import pytest

from repro.devtools.lint.concurrency import ConcurrencyChecker

from lint_fixtures import make_module, rules_of


def check(source: str, module: str = "repro.transport.fixture"):
    checker = ConcurrencyChecker()
    return list(checker.check_module(make_module(source, module=module)))


class TestBareExcept:
    def test_bare_except_fires_everywhere(self):
        source = """
def f():
    try:
        pass
    except:
        pass
"""
        assert rules_of(check(source, module="repro.analysis.fixture")) == [
            "concurrency/bare-except"]

    def test_named_except_is_clean(self):
        source = """
def f():
    try:
        pass
    except ValueError:
        pass
"""
        assert check(source) == []


class TestSwallowedException:
    GOOD = """
class Sender:
    def __init__(self):
        self.send_errors = 0

    def send(self, channel, payload):
        try:
            channel.push(payload)
        except Exception:
            self.send_errors += 1     # counted: visible in statistics
"""

    def test_counted_swallow_is_clean(self):
        assert check(self.GOOD) == []

    def test_uncounted_swallow_fires_in_scope(self):
        mutated = self.GOOD.replace("self.send_errors += 1     "
                                    "# counted: visible in statistics", "pass")
        assert rules_of(check(mutated)) == ["concurrency/swallowed-exception"]

    def test_reraise_is_clean(self):
        source = """
def f(log):
    try:
        risky()
    except Exception as error:
        log(error)
        raise
"""
        assert check(source) == []

    def test_out_of_scope_modules_may_swallow(self):
        mutated = self.GOOD.replace("self.send_errors += 1     "
                                    "# counted: visible in statistics", "pass")
        assert check(mutated, module="repro.analysis.fixture") == []

    def test_tuple_catch_including_exception_fires(self):
        source = """
def f():
    try:
        risky()
    except (ValueError, Exception):
        pass
"""
        assert rules_of(check(source)) == ["concurrency/swallowed-exception"]


class TestQueueGetTimeout:
    def test_blocking_get_fires_in_queueing_module(self):
        source = "import queue\n\ndef drain(q):\n    return q.get()\n"
        assert rules_of(check(source)) == ["concurrency/queue-get-timeout"]

    def test_block_true_positional_fires(self):
        source = "import multiprocessing\n\ndef drain(q):\n    return q.get(True)\n"
        assert rules_of(check(source)) == ["concurrency/queue-get-timeout"]

    def test_timeout_keyword_is_clean(self):
        source = "import queue\n\ndef drain(q):\n    return q.get(timeout=0.2)\n"
        assert check(source) == []

    def test_dict_get_with_key_is_not_a_queue_get(self):
        source = "import queue\n\ndef lookup(d):\n    return d.get('key')\n"
        assert check(source) == []

    def test_module_without_queueing_import_is_ignored(self):
        assert check("def drain(q):\n    return q.get()\n") == []


class TestModuleMutableCache:
    CACHED = """
_CACHE: dict[int, str] = {}


def lookup(key):
    value = _CACHE.get(key)
    if value is None:
        value = str(key)
        _CACHE[key] = value
    return value
"""

    def test_mutated_cache_without_hook_fires(self):
        assert rules_of(check(self.CACHED)) == ["concurrency/module-mutable-cache"]

    def test_clear_hook_referencing_the_cache_exempts(self):
        source = self.CACHED + """

def lookup_cache_clear():
    _CACHE.clear()
"""
        assert check(source) == []

    def test_hook_only_exempts_what_it_clears(self):
        source = self.CACHED + """
_OTHER: dict[int, str] = {}


def touch(key):
    _OTHER[key] = ""


def lookup_cache_clear():
    _CACHE.clear()
"""
        findings = check(source)
        assert rules_of(findings) == ["concurrency/module-mutable-cache"]
        assert "_OTHER" in findings[0].message

    def test_readonly_constant_is_clean(self):
        source = "_TABLE = {1: 'a', 2: 'b'}\n\ndef get(key):\n    return _TABLE[key]\n"
        assert check(source) == []

    def test_lru_cache_without_hook_fires(self):
        source = """
import functools


@functools.lru_cache(maxsize=64)
def normalize(text):
    return text.lower()
"""
        assert rules_of(check(source)) == ["concurrency/module-mutable-cache"]

    def test_lru_cache_with_clear_hook_is_clean(self):
        source = """
import functools


@functools.lru_cache(maxsize=64)
def normalize(text):
    return text.lower()


def normalize_cache_clear():
    normalize.cache_clear()
"""
        assert check(source) == []


class TestShippedTreeExamples:
    """The real modules the rules were calibrated against stay classified."""

    def test_procworkers_feed_loop_has_timeouts(self):
        from pathlib import Path

        from repro.devtools.lint.engine import load_module
        root = Path(__file__).resolve().parents[2]
        module = load_module(root / "src/repro/ingest/procworkers.py", root)
        findings = [f for f in ConcurrencyChecker().check_module(module)]
        assert rules_of(findings) == []
