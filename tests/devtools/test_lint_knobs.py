"""Knob-parity rules against toy configs, a toy docs table and toy consumers."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.devtools.lint.knobs import KnobParityChecker, parse_knob_table

from lint_fixtures import make_module, rules_of


@dataclass(frozen=True)
class ToyCampaign:
    shared: int = 1
    only_campaign: int = 2


@dataclass(frozen=True)
class ToySiren:
    shared: int = 1
    only_framework: int = 3


DOCS = """
# Toy architecture

| Knob | Scope | Description |
| --- | --- | --- |
| `shared` | both | mirrored everywhere |
| `only_campaign` | campaign | campaign-only |
| `only_framework` | framework | framework-only |
"""

CONSUMER = """
def wire(config):
    return (config.shared, config.only_campaign, config.only_framework)
"""


def check(tmp_path, docs: str = DOCS, consumer: str = CONSUMER,
          campaign=ToyCampaign, siren=ToySiren):
    docs_path = tmp_path / "architecture.md"
    docs_path.write_text(docs.lstrip("\n"), encoding="utf-8")
    checker = KnobParityChecker(campaign_cls=campaign, siren_cls=siren,
                                docs_path=docs_path)
    return list(checker.check_tree([make_module(consumer)]))


class TestParsing:
    def test_rows_scopes_and_lines(self):
        rows = parse_knob_table(DOCS.lstrip("\n"))
        assert rows["shared"] == ("both", 5)
        assert rows["only_campaign"] == ("campaign", 6)
        assert set(rows) == {"shared", "only_campaign", "only_framework"}

    def test_non_table_backticks_are_ignored(self):
        assert parse_knob_table("use `shared` with care\n") == {}


class TestParity:
    def test_consistent_fixture_is_clean(self, tmp_path):
        assert check(tmp_path) == []

    def test_missing_row_is_undocumented(self, tmp_path):
        docs = "\n".join(line for line in DOCS.splitlines()
                         if "`shared`" not in line)
        findings = check(tmp_path, docs=docs)
        assert rules_of(findings) == ["knobs/undocumented"]
        assert "'shared'" in findings[0].message

    def test_extra_row_is_stale(self, tmp_path):
        docs = DOCS + "| `ghost_knob` | both | removed long ago |\n"
        findings = check(tmp_path, docs=docs)
        assert rules_of(findings) == ["knobs/stale-doc"]
        assert "'ghost_knob'" in findings[0].message

    def test_wrong_scope_is_a_mismatch(self, tmp_path):
        docs = DOCS.replace("| `only_campaign` | campaign |",
                            "| `only_campaign` | framework |")
        findings = check(tmp_path, docs=docs)
        assert rules_of(findings) == ["knobs/scope-mismatch"]

    def test_documented_both_without_mirror_is_the_pr4_bug(self, tmp_path):
        docs = DOCS.replace("| `only_campaign` | campaign |",
                            "| `only_campaign` | both |")
        findings = check(tmp_path, docs=docs)
        assert rules_of(findings) == ["knobs/missing-mirror"]
        assert "SirenConfig" in findings[0].message

    def test_unread_field_is_unconsumed(self, tmp_path):
        consumer = "def wire(config):\n    return (config.shared, config.only_campaign)\n"
        findings = check(tmp_path, consumer=consumer)
        assert rules_of(findings) == ["knobs/unconsumed"]
        assert "'only_framework'" in findings[0].message

    def test_self_read_inside_config_class_counts(self, tmp_path):
        consumer = """
class ToyCampaign:
    def derived(self):
        return self.shared + self.only_campaign


def wire(config):
    return config.only_framework
"""
        assert check(tmp_path, consumer=consumer) == []

    def test_self_read_outside_config_class_does_not_count(self, tmp_path):
        consumer = """
class Unrelated:
    def derived(self):
        return self.shared + self.only_campaign + self.only_framework
"""
        findings = check(tmp_path, consumer=consumer)
        assert {f.rule for f in findings} == {"knobs/unconsumed"}
        assert len(findings) == 3

    def test_missing_docs_file_reports_and_stops(self, tmp_path):
        checker = KnobParityChecker(campaign_cls=ToyCampaign, siren_cls=ToySiren,
                                    docs_path=tmp_path / "nope.md")
        findings = list(checker.check_tree([make_module(CONSUMER)]))
        assert rules_of(findings) == ["knobs/undocumented"]


class TestRealRepoParity:
    """The shipped configs, docs table and tree agree (the actual gate)."""

    def test_real_configs_match_real_docs(self):
        from pathlib import Path

        from repro.devtools.lint.engine import iter_python_files, load_module

        root = Path(__file__).resolve().parents[2]
        modules = [load_module(path, root)
                   for path in iter_python_files([root / "src" / "repro"])]
        findings = list(KnobParityChecker().check_tree(modules))
        assert findings == []

    def test_docs_table_covers_every_field(self):
        import dataclasses
        from pathlib import Path

        from repro.core.config import SirenConfig
        from repro.workload.campaign import CampaignConfig

        root = Path(__file__).resolve().parents[2]
        rows = parse_knob_table((root / "docs" / "architecture.md")
                                .read_text(encoding="utf-8"))
        fields = ({f.name for f in dataclasses.fields(CampaignConfig)}
                  | {f.name for f in dataclasses.fields(SirenConfig)})
        assert fields <= set(rows)
