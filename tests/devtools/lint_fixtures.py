"""Shared helpers for the lint-framework tests.

Checker unit tests build :class:`SourceModule` objects straight from source
strings (no files on disk), so each rule can be exercised against a
known-good fixture and then against a single-line mutation of it -- the
proof-of-detection pattern every rule family ships with.
"""

from __future__ import annotations

from pathlib import Path

import ast

from repro.devtools.lint.engine import SourceModule, parse_suppressions


def make_module(source: str, module: str = "repro.workload.fixture",
                rel: str = "fixture.py") -> SourceModule:
    """Parse ``source`` into a SourceModule with a chosen dotted name."""
    source = source.lstrip("\n")
    return SourceModule(path=Path(rel), rel=rel, module=module, text=source,
                        tree=ast.parse(source),
                        suppressions=parse_suppressions(rel, source))


def rules_of(findings) -> list[str]:
    """The rule ids of an iterable of findings, in emission order."""
    return [finding.rule for finding in findings]
