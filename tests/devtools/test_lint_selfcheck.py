"""The gate applied to itself: the shipped tree is clean, the CLI behaves."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.lint import registered_families, render_json, run_lint
from repro.devtools.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_WORKLOAD = """
import random


def pick():
    return random.random()
"""


@pytest.fixture(scope="module")
def shipped_result():
    return run_lint([REPO_ROOT / "src" / "repro"], repo_root=REPO_ROOT,
                    strict=True)


class TestShippedTree:
    def test_shipped_tree_is_clean_even_strict(self, shipped_result):
        assert shipped_result.findings == []
        assert shipped_result.meta_findings == []
        assert shipped_result.ok

    def test_all_five_families_ran(self, shipped_result):
        assert set(shipped_result.families) == {"determinism", "concurrency",
                                                "knobs", "counters", "rollups"}
        assert set(registered_families()) == set(shipped_result.families)

    def test_whole_package_was_scanned(self, shipped_result):
        assert shipped_result.modules_scanned >= 90

    def test_json_report_shape(self, shipped_result):
        payload = json.loads(render_json(shipped_result))
        assert payload["ok"] is True
        assert payload["modules_scanned"] == shipped_result.modules_scanned
        assert set(payload) == {"ok", "modules_scanned", "families",
                                "findings", "suppressed", "meta_findings",
                                "counts"}


class TestCli:
    def _seeded_violation(self, tmp_path: Path) -> Path:
        # A fake repo layout whose workload package breaks determinism.
        package = tmp_path / "src" / "repro" / "workload"
        package.mkdir(parents=True)
        (tmp_path / "src" / "repro" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "broken.py").write_text(BAD_WORKLOAD.lstrip("\n"))
        return tmp_path

    def test_violation_exits_one_and_names_the_rule(self, tmp_path, capsys):
        root = self._seeded_violation(tmp_path)
        assert main([str(root / "src" / "repro")]) == 1
        out = capsys.readouterr().out
        assert "determinism/unseeded-random" in out
        assert "FAILED" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        package = tmp_path / "src" / "repro"
        package.mkdir(parents=True)
        (package / "__init__.py").write_text("")
        (package / "fine.py").write_text("VALUE = 1\n")
        assert main([str(package)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_artifact_is_written(self, tmp_path, capsys):
        root = self._seeded_violation(tmp_path)
        report = tmp_path / "out" / "lint.json"
        assert main([str(root / "src" / "repro"), "--json", str(report)]) == 1
        capsys.readouterr()
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert payload["ok"] is False
        assert payload["counts"].get("determinism/unseeded-random") == 1

    def test_select_restricts_families(self, tmp_path, capsys):
        root = self._seeded_violation(tmp_path)
        assert main([str(root / "src" / "repro"),
                     "--select", "concurrency"]) == 0
        capsys.readouterr()

    def test_unknown_family_is_a_usage_error(self, tmp_path, capsys):
        root = self._seeded_violation(tmp_path)
        assert main([str(root / "src" / "repro"),
                     "--select", "nonesuch"]) == 2
        assert "unknown rule families" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["definitely/not/here.py"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        listed = capsys.readouterr().out.split()
        assert set(listed) == {"determinism", "concurrency", "knobs",
                               "counters", "rollups"}

    def test_allow_comment_round_trip(self, tmp_path, capsys):
        root = self._seeded_violation(tmp_path)
        broken = root / "src" / "repro" / "workload" / "broken.py"
        source = broken.read_text(encoding="utf-8").replace(
            "return random.random()",
            "return random.random()  "
            "# repro: allow[determinism/unseeded-random] -- fixture")
        broken.write_text(source, encoding="utf-8")
        assert main([str(root / "src" / "repro")]) == 0
        assert "suppressed" in capsys.readouterr().out
