"""Engine behaviour: suppressions, meta findings, selection, the registry."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.lint import engine as lint_engine
from repro.devtools.lint.engine import (Checker, Finding, Suppression,
                                        parse_suppressions, register_checker,
                                        registered_families, registry_clear,
                                        run_lint)


class LineFlagger(Checker):
    """Test checker: flags every line carrying a ``FLAG`` token."""

    family = "toy"

    def check_module(self, module):
        for lineno, line in enumerate(module.text.splitlines(), start=1):
            if "FLAG" in line:
                yield Finding(rule="toy/flag", message="flagged line",
                              path=module.rel, line=lineno)


def lint_tree(tmp_path: Path, source: str, *, strict: bool = False):
    (tmp_path / "mod.py").write_text(source.lstrip("\n"), encoding="utf-8")
    return run_lint([tmp_path], repo_root=tmp_path,
                    checkers=[LineFlagger()], strict=strict)


class TestSuppressionParsing:
    def test_inline_comment_targets_its_own_line(self):
        allows = parse_suppressions("m.py", "x = 1  # repro: allow[toy/flag] -- why\n")
        assert len(allows) == 1
        assert allows[0].target_line == allows[0].comment_line == 1
        assert allows[0].rules == ("toy/flag",)
        assert allows[0].reason == "why"

    def test_standalone_comment_targets_next_code_line(self):
        source = "# repro: allow[toy] -- block below\n# more commentary\nx = 1\n"
        allows = parse_suppressions("m.py", source)
        assert allows[0].comment_line == 1
        assert allows[0].target_line == 3

    def test_comma_separated_rule_list(self):
        allows = parse_suppressions(
            "m.py", "x = 1  # repro: allow[toy/flag, other/rule] -- both\n")
        assert allows[0].rules == ("toy/flag", "other/rule")

    def test_missing_reason_parses_as_none(self):
        allows = parse_suppressions("m.py", "x = 1  # repro: allow[toy/flag]\n")
        assert allows[0].reason is None

    def test_quoted_syntax_in_strings_is_inert(self):
        # The engine documents its own syntax in docstrings; tokenising (not
        # line-regexing) keeps those examples from becoming live suppressions.
        source = (
            '"""Write ``# repro: allow[toy/flag] -- reason`` to silence."""\n'
            "MESSAGE = 'use # repro: allow[*] here'\n"
        )
        assert parse_suppressions("m.py", source) == []

    def test_matching_by_id_family_and_star(self):
        finding = Finding(rule="toy/flag", message="m", path="m.py", line=3)
        for rules in (("toy/flag",), ("toy",), ("*",)):
            allow = Suppression(path="m.py", comment_line=3, target_line=3,
                                rules=rules, reason="r")
            assert allow.matches(finding)
        wrong_line = Suppression(path="m.py", comment_line=2, target_line=2,
                                 rules=("*",), reason="r")
        assert not wrong_line.matches(finding)


class TestRunLint:
    def test_finding_survives_without_allow(self, tmp_path):
        result = lint_tree(tmp_path, "x = 'FLAG'\n")
        assert [f.rule for f in result.findings] == ["toy/flag"]
        assert not result.ok

    def test_allow_with_reason_suppresses(self, tmp_path):
        result = lint_tree(
            tmp_path, "x = 'FLAG'  # repro: allow[toy/flag] -- fixture\n")
        assert result.findings == []
        assert [f.rule for f in result.suppressed] == ["toy/flag"]
        assert result.ok

    def test_allow_without_reason_is_a_meta_finding(self, tmp_path):
        result = lint_tree(tmp_path, "x = 'FLAG'  # repro: allow[toy/flag]\n")
        assert [f.rule for f in result.meta_findings] == ["lint/missing-reason"]
        assert not result.ok  # the suppression works but the gate still fails

    def test_unused_allow_fails_only_in_strict(self, tmp_path):
        source = "x = 1  # repro: allow[toy/flag] -- stale\n"
        assert lint_tree(tmp_path, source).ok
        strict = lint_tree(tmp_path, source, strict=True)
        assert [f.rule for f in strict.meta_findings] == ["lint/unused-allow"]

    def test_unknown_select_family_raises(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(ValueError, match="unknown rule families"):
            run_lint([tmp_path], repo_root=tmp_path, select=["nonesuch"])


class TestRegistry:
    def test_builtin_families_registered(self):
        assert set(registered_families()) == {"determinism", "concurrency",
                                              "knobs", "counters", "rollups"}

    def test_registry_clear_is_self_repairing(self):
        registry_clear()
        assert lint_engine._REGISTRY == {}
        # the loader re-registers the builtins even though their modules
        # were already imported (import side effects only fire once)
        assert len(registered_families()) == 5

    def test_register_checker_uses_family_name(self):
        before = dict(lint_engine._REGISTRY)
        try:
            register_checker(LineFlagger)
            assert lint_engine._REGISTRY["toy"] is LineFlagger
        finally:
            lint_engine._REGISTRY.clear()
            lint_engine._REGISTRY.update(before)
