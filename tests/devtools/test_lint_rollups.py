"""Rollup-counter rules against a toy registry, plus the real-tree gate."""

from __future__ import annotations

from pathlib import Path

from repro.devtools.lint.rollups import RollupCounterChecker

from lint_fixtures import make_module, rules_of

REGISTRY = {"rollup_syncs": "toy sync counter",
            "rollup_dedup_skips": "toy dedup counter"}

GOOD = """
class Store:
    def __init__(self):
        self.counters = {"rollup_syncs": 0, "rollup_dedup_skips": 0}

    def sync(self, fresh):
        self.counters["rollup_syncs"] += 1
        if not fresh:
            self.counters["rollup_dedup_skips"] += 1
"""


def check(source: str, registry=REGISTRY):
    checker = RollupCounterChecker(registry=registry)
    return [finding for module in [make_module(source)]
            for finding in checker.check_module(module)]


class TestToyRegistry:
    def test_registered_increments_are_clean(self):
        assert check(GOOD) == []

    def test_typoed_increment_key_fires(self):
        mutated = GOOD.replace('self.counters["rollup_dedup_skips"] += 1',
                               'self.counters["rollup_dedup_skip"] += 1')
        findings = check(mutated)
        assert "rollups/unregistered-counter" in rules_of(findings)
        assert any("'rollup_dedup_skip'" in f.message for f in findings)

    def test_unregistered_init_dict_key_fires(self):
        mutated = GOOD.replace('"rollup_syncs": 0', '"rollup_boots": 0')
        findings = check(mutated)
        assert "rollups/unregistered-counter" in rules_of(findings)
        assert any("'rollup_boots'" in f.message for f in findings)

    def test_plain_assignment_is_also_traffic(self):
        source = GOOD + '\n    def reset(self):\n' \
                        '        self.counters["rollup_resets"] = 0\n'
        findings = check(source)
        assert rules_of(findings) == ["rollups/unregistered-counter"]

    def test_computed_key_fires_dynamic(self):
        mutated = GOOD.replace('self.counters["rollup_syncs"] += 1',
                               'self.counters[name] += 1')
        findings = check(mutated)
        assert rules_of(findings) == ["rollups/dynamic-key"]

    def test_other_mappings_stay_out_of_scope(self):
        source = """
def fold(self):
    stats = {}
    for name, value in self.parts.items():
        stats[name] = stats.get(name, 0) + value
    stats["whatever"] = 1
    return stats
"""
        assert check(source) == []

    def test_bare_counters_variable_is_in_scope(self):
        source = 'counters = {"rollup_syncs": 0}\ncounters["bogus"] += 1\n'
        findings = check(source)
        assert rules_of(findings) == ["rollups/unregistered-counter"]

    def test_registry_module_itself_is_exempt(self):
        checker = RollupCounterChecker(registry=REGISTRY)
        module = make_module('counters = {"made_up": 0}\n',
                             module="repro.util.counters")
        assert list(checker.check_module(module)) == []


class TestRealTreeGate:
    def test_real_increment_sites_match_real_registry(self):
        from repro.devtools.lint.engine import iter_python_files, load_module

        root = Path(__file__).resolve().parents[2]
        modules = [load_module(path, root)
                   for path in iter_python_files([root / "src" / "repro"])]
        checker = RollupCounterChecker()
        findings = [finding for module in modules
                    for finding in checker.check_module(module)]
        assert findings == []
