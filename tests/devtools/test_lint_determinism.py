"""Determinism rules: each forbidden entropy/clock entry point is detected.

The deterministic packages are clean today, so every rule is proven the
mutation way: a known-good fixture yields zero findings, then a one-line
mutation makes the rule fire.
"""

from __future__ import annotations

import pytest

from repro.devtools.lint.determinism import DeterminismChecker

from lint_fixtures import make_module, rules_of

GOOD = """
import random
import time

from repro.util.rng import SeededRNG


def jitter(seed: int) -> float:
    rng = random.Random(seed)          # seeded: fine
    return rng.random()


def forked(rng: SeededRNG) -> float:
    return rng.fork("loss").random()


def stall_deadline() -> float:
    return time.monotonic() + 5.0      # monotonic: duration, not wall clock
"""


def check(source: str, module: str = "repro.workload.fixture"):
    checker = DeterminismChecker()
    return list(checker.check_module(make_module(source, module=module)))


class TestGoodFixture:
    def test_seeded_and_monotonic_are_clean(self):
        assert check(GOOD) == []

    def test_out_of_scope_module_is_ignored(self):
        noisy = "import random\nvalue = random.random()\n"
        assert check(noisy, module="repro.analysis.fixture") == []
        assert check(noisy, module="repro.devtools.fixture") == []


class TestMutationsFire:
    @pytest.mark.parametrize("mutation, rule", [
        ("leak = random.random()", "determinism/unseeded-random"),
        ("leak = random.randint(0, 9)", "determinism/unseeded-random"),
        ("leak = random.Random()", "determinism/unseeded-random"),
        ("random.seed(42)", "determinism/global-seed"),
        ("import uuid\nleak = uuid.uuid4()", "determinism/entropy"),
        ("import os\nleak = os.urandom(8)", "determinism/entropy"),
        ("import secrets\nleak = secrets.token_bytes(4)", "determinism/entropy"),
        ("leak = time.time()", "determinism/wall-clock"),
        ("leak = time.time_ns()", "determinism/wall-clock"),
        ("from datetime import datetime\nleak = datetime.now()",
         "determinism/wall-clock"),
        ("from datetime import date\nleak = date.today()",
         "determinism/wall-clock"),
    ])
    def test_one_line_mutation_is_caught(self, mutation, rule):
        findings = check(GOOD + "\n" + mutation + "\n")
        assert rules_of(findings) == [rule]

    @pytest.mark.parametrize("package", ["repro.hpcsim", "repro.workload",
                                         "repro.faults", "repro.transport"])
    def test_every_contract_package_is_in_scope(self, package):
        findings = check("import random\nleak = random.random()\n",
                         module=f"{package}.fixture")
        assert rules_of(findings) == ["determinism/unseeded-random"]

    def test_seeded_random_constructor_stays_clean(self):
        assert check("import random\nrng = random.Random(7)\n") == []

    def test_finding_carries_location(self):
        findings = check(GOOD + "\nleak = time.time()\n")
        assert findings[0].line == len(GOOD.lstrip("\n").splitlines()) + 2
        assert findings[0].family == "determinism"
