"""Test-collection home for the lint-framework suite.

The shared source-fixture helpers live in :mod:`lint_fixtures` (a plain
sibling module, importable because pytest prepends this directory to
``sys.path`` for non-package test trees).
"""
