"""Tests for the FNV hashes and the ssdeep piece hash."""

from repro.hashing.fnv import (
    FNV32_PRIME,
    SSDEEP_HASH_INIT,
    fnv1_32,
    fnv1a_32,
    fnv1a_64,
    sum_hash,
    sum_hash_bytes,
)


class TestSumHash:
    def test_single_step(self):
        assert sum_hash(0x41, SSDEEP_HASH_INIT) == \
            ((SSDEEP_HASH_INIT * FNV32_PRIME) & 0xFFFFFFFF) ^ 0x41

    def test_bytes_equivalent_to_steps(self):
        state = SSDEEP_HASH_INIT
        for byte in b"hello":
            state = sum_hash(byte, state)
        assert state == sum_hash_bytes(b"hello")

    def test_stays_32_bit(self):
        assert 0 <= sum_hash_bytes(bytes(range(256)) * 10) < 2 ** 32


class TestFNV:
    def test_fnv1a_32_known_vector(self):
        # Standard FNV-1a test vectors.
        assert fnv1a_32(b"") == 0x811C9DC5
        assert fnv1a_32(b"a") == 0xE40C292C

    def test_fnv1a_64_known_vector(self):
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_fnv1_differs_from_fnv1a(self):
        assert fnv1_32(b"hello world") != fnv1a_32(b"hello world")

    def test_different_inputs_differ(self):
        assert fnv1a_64(b"abc") != fnv1a_64(b"abd")

    def test_deterministic(self):
        assert fnv1a_64(b"payload") == fnv1a_64(b"payload")

    def test_unrolled_loop_matches_per_byte_reference(self):
        """fnv1a_64 defers the 64-bit mask across a 4-byte unroll; it must
        agree with the per-byte definition at every length mod 4."""
        def reference(data: bytes) -> int:
            state = 0xCBF29CE484222325
            for byte in data:
                state = ((state ^ byte) * 0x00000100000001B3) & 0xFFFFFFFFFFFFFFFF
            return state

        from repro.util.rng import SeededRNG

        for length in (0, 1, 2, 3, 4, 5, 7, 8, 9, 100, 1001, 4096):
            payload = SeededRNG(length).bytes(length)
            assert fnv1a_64(payload) == reference(payload)
