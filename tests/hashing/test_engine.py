"""Golden and property tests for the single-pass CTPH engine.

The engine (:mod:`repro.hashing.engine`) must be *byte-identical* to the
reference per-byte implementation (:meth:`FuzzyHasher.hash_reference`) for
every input and knob combination -- the digests below are pinned literals
computed from the seed implementation, so neither side can drift.
"""

import random

import pytest

import repro.hashing.engine as engine_module
from repro.hashing.engine import FuzzyState, hash_many_parts, scan_backend
from repro.hashing.ssdeep import FuzzyHash, FuzzyHasher
from repro.util.rng import SeededRNG


def golden_corpus() -> list[tuple[str, bytes]]:
    """Deterministic payloads covering the tricky CTPH regimes."""
    return [
        ("empty", b""),
        ("one-byte", b"\x00"),
        ("seven-bytes", b"SIREN!!"),
        ("tiny-random", SeededRNG(11).bytes(50)),
        ("all-zeros", b"\x00" * 4096),                    # no triggers at all
        ("repetitive-ab", b"ab" * 5000),                  # halves to min blocksize
        ("single-value-run", b"x" * 65536),
        ("halving-trigger", bytes([7, 7, 7, 250]) * 3000),  # long min-blocksize sig
        ("byte-ramp", bytes(range(256)) * 100),
        ("random-192", SeededRNG(12).bytes(192)),         # initial_block_size edge
        ("random-193", SeededRNG(12).bytes(193)),         # one byte past the edge
        ("random-64k", SeededRNG(13).bytes(65536)),
        ("random-1mib-plus", SeededRNG(14).bytes(1048577)),
    ]


#: Digests computed with the seed (reference) implementation -- frozen.
GOLDEN_DIGESTS = {
    "empty": "3::",
    "one-byte": "3:l:l",
    "seven-bytes": "3:8Rn:c",
    "tiny-random": "3:VM4MRMwa2YVM9iJ4xUY:m4MeZK",
    "all-zeros": "3:n:n",
    "repetitive-ab": "3:uy:uy",
    "single-value-run": "3:n:n",
    "halving-trigger": "3:1izMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMMA:n",
    "byte-ramp": "192:znnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnnb:n",
    "random-192": "3:h55tjzp7XO8cvdByM0lhhZwHOzuAiaw3lNrljrx//AVCV18J+9cNOJzyU4Cq7oBx:v5ttXFcFAlDZyOzRiB3lNrljrx/Nww9x",
    "random-193": "6:v5ttXFcFAlDZyOzRiB3lNrljrx/Nww9HH8Jf5:TcFA1ZyOzI7rljV+w98Jh",
    "random-64k": "1536:l2E6qzfwQuH7nPoaKPvROkxSxsmONUwdiUUsA/mUQqG:gEBEPPcYksjOCoiUUvu",
    "random-1mib-plus": "24576:idDK8igwCFVszei7diNTYA/qMUZ1RlPS8I/:iBigezeOdKTT/qMUZ13PSv/",
}


@pytest.fixture(params=["native", "python"])
def scan_kernel(request, monkeypatch):
    """Run the test on the default scan kernel AND the pure-Python fallback."""
    if request.param == "python":
        monkeypatch.setattr(engine_module, "_np", None)
    return request.param


class TestGoldenDigests:
    @pytest.mark.parametrize("name,payload", golden_corpus())
    def test_engine_matches_pinned_digest(self, name, payload, scan_kernel):
        if scan_kernel == "python" and len(payload) > 262144:
            pytest.skip("pure-Python kernel golden check capped at 256 KiB")
        assert str(FuzzyHasher().hash(payload)) == GOLDEN_DIGESTS[name]

    @pytest.mark.parametrize("name,payload",
                             [case for case in golden_corpus()
                              if len(case[1]) <= 65536])
    def test_reference_still_matches_pinned_digest(self, name, payload):
        """The oracle itself must not drift (large payloads skipped for speed)."""
        assert str(FuzzyHasher().hash_reference(payload)) == GOLDEN_DIGESTS[name]

    def test_corpus_has_all_golden_entries(self):
        assert {name for name, _ in golden_corpus()} == set(GOLDEN_DIGESTS)


class TestEngineEquivalence:
    """Randomised engine-vs-reference equality, across the hasher knobs."""

    @pytest.mark.parametrize("min_block_size,signature_length",
                             [(3, 64), (1, 64), (5, 64), (3, 32), (2, 16), (7, 8)])
    def test_engine_equals_reference(self, min_block_size, signature_length):
        hasher = FuzzyHasher(min_block_size=min_block_size,
                             signature_length=signature_length)
        rng = random.Random(min_block_size * 1000 + signature_length)
        for trial in range(10):
            size = rng.choice([0, 1, 6, 7, 8, 100, 1000, 5000, 30000])
            if trial % 3 == 0:
                payload = bytes([trial % 5] * size)
            else:
                payload = SeededRNG(trial * 37 + size).bytes(size)
            assert hasher.hash(payload) == hasher.hash_reference(payload)

    def test_use_engine_flag_selects_identical_paths(self):
        payload = SeededRNG(5).bytes(20000)
        assert FuzzyHasher(use_engine=False).hash(payload) == FuzzyHasher().hash(payload)

    def test_python_scan_kernel_matches(self, monkeypatch):
        """The no-numpy fallback kernel produces the same digests."""
        payloads = [b"", b"ab" * 700, SeededRNG(21).bytes(9001), b"\xff" * 500]
        expected = [str(FuzzyHasher().hash(p)) for p in payloads]
        monkeypatch.setattr(engine_module, "_np", None)
        assert scan_backend() == "python"
        assert [str(FuzzyHasher().hash(p)) for p in payloads] == expected

    def test_vectorised_scan_slicing_is_seamless(self, monkeypatch):
        """Pins the multi-slice window/rebase arithmetic of the numpy scan
        (production _SCAN_SLICE is 4 MiB, far above test payload sizes)."""
        if engine_module._np is None:
            pytest.skip("numpy kernel not available")
        payloads = [SeededRNG(51).bytes(size) for size in (4095, 4096, 4097, 20000)]
        expected = [str(FuzzyHasher().hash(p)) for p in payloads]
        monkeypatch.setattr(engine_module, "_SCAN_SLICE", 4096)
        assert [str(FuzzyHasher().hash(p)) for p in payloads] == expected
        monkeypatch.setattr(engine_module, "_SCAN_SLICE", 7)  # degenerate slices
        assert str(FuzzyHasher().hash(payloads[0])) == expected[0]


class TestFuzzyState:
    def test_streaming_chunks_equal_one_shot(self):
        payload = SeededRNG(31).bytes(40000)
        one_shot = FuzzyState().update(payload).digest()
        rng = random.Random(7)
        for _ in range(5):
            state = FuzzyState()
            index = 0
            while index < len(payload):
                step = rng.choice([1, 3, 6, 7, 8, 100, 4096])
                state.update(payload[index:index + step])
                index += step
            assert state.digest() == one_shot

    def test_streaming_never_rescans(self):
        """Consumed bytes stay consumed: updates only grow the length."""
        state = FuzzyState()
        state.update(b"abc").update(b"").update(bytes(10))
        assert state.length == 13

    def test_digest_is_a_fuzzy_hash(self):
        digest = FuzzyState().update(b"hello world" * 100).digest()
        assert isinstance(digest, FuzzyHash)
        assert FuzzyHash.parse(str(digest)) == digest

    def test_digest_then_update_then_digest(self):
        payload = SeededRNG(33).bytes(5000)
        state = FuzzyState()
        state.update(payload[:2000])
        intermediate = state.digest()
        assert intermediate == FuzzyState().update(payload[:2000]).digest()
        state.update(payload[2000:])
        assert state.digest() == FuzzyState().update(payload).digest()

    def test_empty_stream(self):
        assert str(FuzzyState().digest()) == "3::"

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            FuzzyState().update("text")  # type: ignore[arg-type]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FuzzyState(min_block_size=0)
        with pytest.raises(ValueError):
            FuzzyState(signature_length=4)

    def test_accepts_memoryview_and_bytearray(self):
        payload = SeededRNG(34).bytes(3000)
        via_views = FuzzyState().update(memoryview(payload[:1500]))
        via_views.update(bytearray(payload[1500:]))
        assert via_views.digest() == FuzzyState().update(payload).digest()


class TestHashMany:
    def _payloads(self):
        rng = SeededRNG(41)
        return [rng.bytes(size) for size in (0, 17, 1000, 20000, 333)]

    def test_sequential_matches_hash(self):
        hasher = FuzzyHasher()
        payloads = self._payloads()
        assert hasher.hash_many(payloads) == [hasher.hash(p) for p in payloads]

    def test_process_pool_matches_sequential_in_order(self):
        hasher = FuzzyHasher()
        payloads = self._payloads()
        assert hasher.hash_many(payloads, concurrency=2) == \
            [hasher.hash(p) for p in payloads]

    def test_hash_many_parts_respects_knobs(self):
        payloads = [SeededRNG(42).bytes(4000)]
        hasher = FuzzyHasher(min_block_size=5, signature_length=32)
        (block, sig1, sig2), = hash_many_parts(payloads, 5, 32)
        assert FuzzyHash(block, sig1, sig2) == hasher.hash(payloads[0])

    def test_rejects_non_bytes_payloads(self):
        with pytest.raises(TypeError):
            FuzzyHasher().hash_many([b"ok", "not bytes"])  # type: ignore[list-item]

    def test_process_pool_is_reused_across_batches(self):
        hasher = FuzzyHasher()
        try:
            hasher.hash_many([b"a" * 100, b"b" * 100], concurrency=2)
            pool = hasher._pool
            assert pool is not None
            hasher.hash_many([b"c" * 100, b"d" * 100], concurrency=2)
            assert hasher._pool is pool
        finally:
            hasher.close()
        assert hasher._pool is None

    def test_broken_pool_recovers_and_respawns(self):
        """A killed worker must not poison later batches: the broken pool is
        dropped, the current batch finishes sequentially, the next respawns."""
        import os
        import signal
        import time

        hasher = FuzzyHasher()
        payloads = [b"x" * 5000, b"y" * 5000, b"z" * 5000]
        expected = hasher.hash_many(payloads)
        try:
            hasher.hash_many(payloads, concurrency=2)
            pool = hasher._pool
            os.kill(next(iter(pool._processes)), signal.SIGKILL)
            time.sleep(0.2)
            assert hasher.hash_many(payloads, concurrency=2) == expected
            assert hasher.hash_many(payloads, concurrency=2) == expected
            assert hasher._pool is not pool
        finally:
            hasher.close()

    def test_reference_hasher_ignores_concurrency(self):
        """use_engine=False must stay on the reference path even in batches
        (the pool workers only implement the engine)."""
        hasher = FuzzyHasher(use_engine=False)
        payloads = self._payloads()
        assert hasher.hash_many(payloads, concurrency=2) == \
            [hasher.hash_reference(p) for p in payloads]
        assert hasher._pool is None  # no pool was ever spun up
