"""Property tests pinning the bit-parallel comparison engine to the oracle.

The engine's claim is exactness, not approximation: every score produced
through the ``"bitparallel"`` backend -- scalar ``compare``, batched
``compare_many``, and the numpy one-vs-many kernel behind it -- must be
byte-identical to the seed scalar path (``compare_reference``: re-parse,
re-normalise, Python DP per pair).  These tests sweep random signatures,
block-size bands, both ``require_common_substring`` settings and non-default
hasher geometries, and also pin the kernel itself against a textbook LCS DP.
"""

import gc
import random
import weakref

import pytest

from repro.hashing.compare_engine import (
    CompareCache,
    default_cost_distance,
    lcs_length,
    lcs_length_many,
    normalize_digest,
    signature_grams,
    signature_masks,
)
from repro.hashing.edit_distance import weighted_edit_distance
from repro.hashing.engine import B64_ALPHABET
from repro.hashing.ssdeep import FuzzyHash, FuzzyHasher, eliminate_sequences

# --------------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------------- #


def _random_signature(rng: random.Random, max_len: int = 64) -> str:
    """A signature-like string: base64 chars with occasional runs > 3."""
    out = []
    while len(out) < rng.randint(0, max_len):
        char = rng.choice(B64_ALPHABET)
        out.extend(char * rng.choice((1, 1, 1, 2, 5)))
    return "".join(out[:max_len])


def _random_digest(rng: random.Random, block_size: int | None = None,
                   max_len: int = 64) -> str:
    if block_size is None:
        block_size = 3 * (2 ** rng.randint(0, 6))
    return str(FuzzyHash(block_size=block_size,
                         sig1=_random_signature(rng, max_len),
                         sig2=_random_signature(rng, max_len // 2)))


def _lcs_reference(a: str, b: str) -> int:
    dp = [[0] * (len(b) + 1) for _ in range(len(a) + 1)]
    for i in range(1, len(a) + 1):
        for j in range(1, len(b) + 1):
            if a[i - 1] == b[j - 1]:
                dp[i][j] = dp[i - 1][j - 1] + 1
            else:
                dp[i][j] = max(dp[i - 1][j], dp[i][j - 1])
    return dp[len(a)][len(b)]


# --------------------------------------------------------------------------- #
# the kernel itself
# --------------------------------------------------------------------------- #
class TestLcsKernel:
    def test_scalar_matches_textbook_dp(self):
        rng = random.Random(11)
        alphabet = "ABCDab01+/"
        for _ in range(500):
            a = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 70)))
            b = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 70)))
            assert lcs_length(signature_masks(a), len(a), b) == _lcs_reference(a, b)

    def test_patterns_wider_than_one_word_stay_exact(self):
        # Custom signature_length configurations can normalise to > 64 chars;
        # the Python-int kernel widens past the machine word transparently.
        rng = random.Random(12)
        for _ in range(50):
            a = "".join(rng.choice("abcd") for _ in range(rng.randint(65, 200)))
            b = "".join(rng.choice("abcd") for _ in range(rng.randint(0, 200)))
            assert lcs_length(signature_masks(a), len(a), b) == _lcs_reference(a, b)

    def test_batch_matches_scalar(self):
        rng = random.Random(13)
        for _ in range(60):
            pattern = "".join(rng.choice(B64_ALPHABET)
                              for _ in range(rng.randint(1, 64)))
            masks = signature_masks(pattern)
            texts = ["".join(rng.choice(B64_ALPHABET)
                             for _ in range(rng.randint(0, 70)))
                     for _ in range(rng.randint(1, 40))]
            assert lcs_length_many(masks, len(pattern), texts) == \
                [lcs_length(masks, len(pattern), text) for text in texts]

    def test_batch_with_empty_and_duplicate_texts(self):
        masks = signature_masks("ABCDEFAB")
        texts = ["", "ABCDEFAB", "FEDCBA", "ABCDEFAB", "", "xyz"]
        assert lcs_length_many(masks, 8, texts) == \
            [lcs_length(masks, 8, text) for text in texts]

    def test_full_word_pattern_wraps_exactly(self):
        # m == 64 exercises the mod-2**64 wrap of the numpy path.
        rng = random.Random(14)
        pattern = "".join(rng.choice(B64_ALPHABET) for _ in range(64))
        masks = signature_masks(pattern)
        texts = [pattern, pattern[::-1], pattern[1:] + "A"] + [
            "".join(rng.choice(B64_ALPHABET) for _ in range(64))
            for _ in range(20)]
        assert lcs_length_many(masks, 64, texts) == \
            [_lcs_reference(pattern, text) for text in texts]

    def test_default_cost_distance_equals_weighted_dp(self):
        # The whole reduction: with costs 1/1/2/2 the weighted
        # Damerau-Levenshtein distance is len(a)+len(b) - 2*LCS(a,b).
        rng = random.Random(15)
        for _ in range(400):
            a = _random_signature(rng)
            b = _random_signature(rng)
            if not a or not b:
                continue
            assert default_cost_distance(a, b) == weighted_edit_distance(a, b)


# --------------------------------------------------------------------------- #
# the normalization cache
# --------------------------------------------------------------------------- #
class TestNormalizeDigest:
    def test_matches_parse_and_eliminate(self):
        digest = "96:aaaaaabcdefg:ZZZZZxy"
        normalized = normalize_digest(digest)
        parsed = FuzzyHash.parse(digest)
        assert normalized.block_size == 96
        assert normalized.s1 == eliminate_sequences(parsed.sig1)
        assert normalized.s2 == eliminate_sequences(parsed.sig2)
        assert normalized.grams1 == signature_grams(normalized.s1)
        assert normalized.masks2 == signature_masks(normalized.s2)

    def test_rejects_garbage_like_parse(self):
        with pytest.raises(ValueError):
            normalize_digest("not a hash")
        with pytest.raises(ValueError):
            normalize_digest("0:abc:def")

    def test_gram_sets_mirror_common_substring_gate(self):
        from repro.hashing.edit_distance import has_common_substring

        rng = random.Random(16)
        for _ in range(300):
            a = _random_signature(rng)
            b = _random_signature(rng)
            assert bool(signature_grams(a) & signature_grams(b)) == \
                has_common_substring(a, b, 7)


# --------------------------------------------------------------------------- #
# backend equivalence: scores must be byte-identical
# --------------------------------------------------------------------------- #
class TestBackendEquivalence:
    @pytest.mark.parametrize("require_common_substring", [True, False])
    def test_random_digests_across_blocksize_bands(self, require_common_substring):
        rng = random.Random(17)
        bit = FuzzyHasher(require_common_substring=require_common_substring)
        ref = FuzzyHasher(require_common_substring=require_common_substring,
                          compare_backend="reference")
        for _ in range(600):
            block = 3 * (2 ** rng.randint(0, 4))
            # Same band, double band, and incompatible bands all appear.
            other = block * rng.choice((1, 1, 2, 4)) if rng.random() < 0.8 \
                else 3 * (2 ** rng.randint(0, 6))
            a = _random_digest(rng, block)
            b = _random_digest(rng, other)
            assert bit.compare(a, b) == ref.compare(a, b), (a, b)

    def test_related_payload_digests(self):
        # Digests of genuinely related payloads (non-zero scores, exact-100
        # fast paths, double-block alignments) rather than random strings.
        from repro.util.rng import SeededRNG

        bit = FuzzyHasher()
        ref = FuzzyHasher(compare_backend="reference")
        base = SeededRNG(5).bytes(30000)
        variants = [base]
        for step in (4096, 1024, 256, 64):
            mutated = bytearray(base)
            for index in range(0, len(mutated), step):
                mutated[index] ^= 0xFF
            variants.append(bytes(mutated))
        variants.append(base[:15000])
        variants.append(base + base[:10000])
        digests = [str(bit.hash(payload)) for payload in variants]
        for a in digests:
            for b in digests:
                assert bit.compare(a, b) == ref.compare(a, b), (a, b)

    def test_non_default_hasher_geometry(self):
        rng = random.Random(18)
        for min_block, sig_len in ((1, 8), (5, 32), (3, 128)):
            bit = FuzzyHasher(min_block_size=min_block, signature_length=sig_len)
            ref = FuzzyHasher(min_block_size=min_block, signature_length=sig_len,
                              compare_backend="reference")
            for _ in range(150):
                a = _random_digest(rng, min_block * (2 ** rng.randint(0, 3)),
                                   max_len=min(sig_len, 160))
                b = _random_digest(rng, min_block * (2 ** rng.randint(0, 3)),
                                   max_len=min(sig_len, 160))
                assert bit.compare(a, b) == ref.compare(a, b), (a, b)

    def test_empty_signatures_and_identity(self):
        bit = FuzzyHasher()
        ref = FuzzyHasher(compare_backend="reference")
        cases = ["3::", "3:ABCDEFGH:", "3::ABCDEFGH", "6:ABCDEFGH:ABCD"]
        for a in cases:
            for b in cases:
                assert bit.compare(a, b) == ref.compare(a, b), (a, b)

    def test_fuzzyhash_objects_score_from_components_not_reparse(self):
        # Hand-constructed FuzzyHash objects may not survive a str()+re-parse
        # round trip (a ':' inside sig1 shifts the split); both backends must
        # score the object's actual components.
        bit = FuzzyHasher()
        ref = FuzzyHasher(compare_backend="reference")
        weird = FuzzyHash(block_size=3, sig1="ABC:DEFGHIJ", sig2="KLMNOP")
        plain = FuzzyHash(block_size=3, sig1="ABC:DEFGHIJ", sig2="KLMNOP")
        assert bit.compare(weird, plain) == ref.compare(weird, plain) == 100
        # compare_many honours its scalar-equivalence contract for objects too.
        assert bit.compare_many(weird, [plain]) == [bit.compare(weird, plain)]
        assert FuzzyHasher(compare_backend="reference").compare_many(
            weird, [plain]) == [ref.compare(weird, plain)]

    def test_invalid_digest_raises_value_error_on_both_backends(self):
        for backend in ("bitparallel", "reference"):
            with pytest.raises(ValueError):
                FuzzyHasher(compare_backend=backend).compare("garbage", "3:AB:C")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            FuzzyHasher(compare_backend="gpu")
        hasher = FuzzyHasher()
        with pytest.raises(ValueError):
            hasher.compare_backend = "gpu"


# --------------------------------------------------------------------------- #
# compare_many: batch vs scalar
# --------------------------------------------------------------------------- #
class TestCompareMany:
    @pytest.mark.parametrize("backend", ["bitparallel", "reference"])
    @pytest.mark.parametrize("require_common_substring", [True, False])
    def test_matches_scalar_loop(self, backend, require_common_substring):
        rng = random.Random(19)
        hasher = FuzzyHasher(compare_backend=backend,
                             require_common_substring=require_common_substring)
        oracle = FuzzyHasher(compare_backend="reference",
                             require_common_substring=require_common_substring)
        for _ in range(20):
            baseline = _random_digest(rng, 3 * (2 ** rng.randint(0, 3)))
            candidates = [_random_digest(rng, 3 * (2 ** rng.randint(0, 5)))
                          for _ in range(rng.randint(0, 40))]
            # Repeat some candidates so the dedup/broadcast path runs.
            candidates += candidates[:len(candidates) // 3]
            rng.shuffle(candidates)
            assert hasher.compare_many(baseline, candidates) == \
                [oracle.compare(baseline, digest) for digest in candidates]

    def test_accepts_fuzzyhash_objects(self):
        hasher = FuzzyHasher()
        baseline = FuzzyHash(3, "ABCDEFGHIJ", "ABCDE")
        candidates = [FuzzyHash(3, "ABCDEFGHIJ", "ABCDE"), "6:ABCDEFGHIJ:ABCDE"]
        assert hasher.compare_many(baseline, candidates) == \
            [hasher.compare(baseline, candidate) for candidate in candidates]

    def test_empty_batch(self):
        assert FuzzyHasher().compare_many("3:ABCDEFG:HIJ", []) == []

    def test_feeds_the_shared_compare_lru(self):
        rng = random.Random(20)
        hasher = FuzzyHasher()
        baseline = _random_digest(rng, 3)
        candidates = [_random_digest(rng, 3) for _ in range(10)]
        hasher.compare_many(baseline, candidates)
        info = hasher.compare_cache_info()
        assert info.currsize == len(set(candidates))
        # Scalar lookups of the same pairs are now all hits.
        for candidate in candidates:
            hasher.compare_cached(baseline, candidate)
        after = hasher.compare_cache_info()
        assert after.misses == info.misses
        assert after.hits == info.hits + len(candidates)

    def test_consumes_lru_entries_from_scalar_calls(self):
        rng = random.Random(21)
        hasher = FuzzyHasher()
        baseline = _random_digest(rng, 3)
        candidate = _random_digest(rng, 3)
        hasher.compare_cached(baseline, candidate)
        info = hasher.compare_cache_info()
        hasher.compare_many(baseline, [candidate, candidate])
        after = hasher.compare_cache_info()
        assert after.misses == info.misses  # the batch never recomputed it
        assert after.hits == info.hits + 1  # one lookup per unique pair


# --------------------------------------------------------------------------- #
# the compare LRU and knob lifecycle
# --------------------------------------------------------------------------- #
class TestCompareCacheLifecycle:
    def test_cache_clear_empties_and_resets(self):
        hasher = FuzzyHasher()
        hasher.compare_cached("3:ABCDEFGH:IJKL", "3:ABCDEFGH:IJKL")
        assert hasher.compare_cache_info().currsize == 1
        hasher.compare_cache_clear()
        info = hasher.compare_cache_info()
        assert info.currsize == 0 and info.hits == 0 and info.misses == 0

    def test_backend_change_clears_the_cache(self):
        hasher = FuzzyHasher()
        hasher.compare_cached("3:ABCDEFGH:IJKL", "3:ABCDEFGH:IJKL")
        hasher.compare_backend = "reference"
        assert hasher.compare_backend == "reference"
        assert hasher.compare_cache_info().currsize == 0

    def test_gate_change_clears_the_cache(self):
        hasher = FuzzyHasher()
        hasher.compare_cached("3:ABCDEFGH:IJKL", "3:ABCDEFGH:IJKL")
        hasher.require_common_substring = False
        assert hasher.compare_cache_info().currsize == 0
        # Re-assigning the same value keeps the (new) cache intact.
        hasher.compare_cached("3:ABCDEFGH:IJKL", "3:ABCDEFGH:IJKL")
        hasher.require_common_substring = False
        assert hasher.compare_cache_info().currsize == 1

    def test_lru_evicts_least_recently_used(self):
        cache = CompareCache(maxsize=2)
        cache.put(("a", "b"), 1)
        cache.put(("c", "d"), 2)
        assert cache.get(("a", "b")) == 1  # refresh ("a","b")
        cache.put(("e", "f"), 3)           # evicts ("c","d")
        assert cache.get(("c", "d")) is None
        assert cache.get(("a", "b")) == 1
        assert cache.get(("e", "f")) == 3

    def test_zero_size_cache_stores_nothing(self):
        cache = CompareCache(maxsize=0)
        cache.put(("a", "b"), 1)
        assert cache.info().currsize == 0

    def test_hasher_is_freed_without_a_gc_cycle_pass(self):
        # The seed wrapped a bound method in lru_cache, pinning the hasher in
        # a reference cycle until a full GC pass.  The explicit cache holds
        # only strings and ints, so refcounting alone frees the hasher.
        gc.disable()
        try:
            hasher = FuzzyHasher()
            hasher.compare_cached("3:ABCDEFGH:IJKL", "3:ABCDEFGH:IJKL")
            ref = weakref.ref(hasher)
            del hasher
            assert ref() is None
        finally:
            gc.enable()
