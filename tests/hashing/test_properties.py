"""Property-based tests (hypothesis) for the hashing substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.edit_distance import damerau_levenshtein, levenshtein, weighted_edit_distance
from repro.hashing.rolling import ROLLING_WINDOW, roll_sequence
from repro.hashing.ssdeep import FuzzyHash, FuzzyHasher
from repro.hashing.xxhash import xxh32, xxh64

_HASHER = FuzzyHasher()

short_text = st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=40)
payloads = st.binary(min_size=0, max_size=4096)


class TestEditDistanceProperties:
    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    @settings(max_examples=100, deadline=None)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0
        assert damerau_levenshtein(a, a) == 0

    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_damerau_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)

    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_bounded_by_longer_length(self, a, b):
        assert levenshtein(a, b) <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=75, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text, short_text)
    @settings(max_examples=100, deadline=None)
    def test_weighted_distance_nonnegative(self, a, b):
        assert weighted_edit_distance(a, b) >= 0


class TestCompareEngineProperties:
    """The bit-parallel engine against the scalar oracle, hypothesis-driven."""

    signatures = st.text(
        alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/",
        max_size=64)
    block_sizes = st.sampled_from([3, 6, 12, 24, 48, 96, 192])

    @given(short_text, short_text)
    @settings(max_examples=150, deadline=None)
    def test_lcs_reduction_equals_weighted_dp(self, a, b):
        from repro.hashing.compare_engine import default_cost_distance

        assert default_cost_distance(a, b) == weighted_edit_distance(a, b)

    @given(signatures, signatures, signatures, signatures,
           block_sizes, block_sizes, st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_backends_score_byte_identical(self, s1a, s1b, s2a, s2b,
                                           block1, block2, require_gram):
        bit = FuzzyHasher(require_common_substring=require_gram)
        ref = FuzzyHasher(require_common_substring=require_gram,
                          compare_backend="reference")
        a = str(FuzzyHash(block_size=block1, sig1=s1a, sig2=s1b))
        b = str(FuzzyHash(block_size=block2, sig1=s2a, sig2=s2b))
        assert bit.compare(a, b) == ref.compare(a, b)

    @given(st.lists(st.tuples(signatures, signatures, block_sizes),
                    min_size=0, max_size=12),
           signatures, signatures, block_sizes)
    @settings(max_examples=60, deadline=None)
    def test_compare_many_equals_scalar_loop(self, candidates, sig1, sig2, block):
        bit = FuzzyHasher()
        ref = FuzzyHasher(compare_backend="reference")
        baseline = str(FuzzyHash(block_size=block, sig1=sig1, sig2=sig2))
        digests = [str(FuzzyHash(block_size=b, sig1=a, sig2=c))
                   for a, c, b in candidates]
        assert bit.compare_many(baseline, digests) == \
            [ref.compare(baseline, digest) for digest in digests]


class TestRollingHashProperties:
    @given(payloads)
    @settings(max_examples=50, deadline=None)
    def test_window_locality(self, data):
        """Appending the same suffix to different prefixes converges after 7 bytes."""
        suffix = b"ABCDEFGHIJKLMNOP"
        a = roll_sequence(b"\x01" * 20 + data[:10] + suffix)
        b = roll_sequence(b"\x02" * 20 + data[:10] + suffix)
        assert a[-(len(suffix) - ROLLING_WINDOW + 1):] == b[-(len(suffix) - ROLLING_WINDOW + 1):]

    @given(payloads)
    @settings(max_examples=50, deadline=None)
    def test_values_32_bit(self, data):
        assert all(0 <= value < 2 ** 32 for value in roll_sequence(data))


class TestFuzzyHashProperties:
    @given(payloads)
    @settings(max_examples=40, deadline=None)
    def test_self_similarity_of_nonempty_input(self, data):
        digest = _HASHER.hash(data)
        if digest.sig1:  # empty input has an empty signature, which never matches
            assert _HASHER.compare(digest, digest) == 100

    @given(payloads)
    @settings(max_examples=40, deadline=None)
    def test_digest_parses_back(self, data):
        digest = _HASHER.hash(data)
        assert FuzzyHash.parse(str(digest)) == digest

    @given(payloads, payloads)
    @settings(max_examples=40, deadline=None)
    def test_score_is_bounded_and_symmetric(self, a, b):
        ha, hb = _HASHER.hash(a), _HASHER.hash(b)
        score = _HASHER.compare(ha, hb)
        assert 0 <= score <= 100
        assert score == _HASHER.compare(hb, ha)

    @given(payloads)
    @settings(max_examples=40, deadline=None)
    def test_signature_length_bounds(self, data):
        digest = _HASHER.hash(data)
        assert len(digest.sig1) <= 64
        assert len(digest.sig2) <= 32


class TestXXHashProperties:
    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_ranges(self, data):
        assert 0 <= xxh32(data) < 2 ** 32
        assert 0 <= xxh64(data) < 2 ** 64

    @given(payloads)
    @settings(max_examples=100, deadline=None)
    def test_determinism(self, data):
        assert xxh64(data) == xxh64(data)

    @given(payloads, st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_seed_dependency(self, data, seed):
        # Different seeds should essentially never collide on the same data.
        if data:
            assert xxh64(data, seed) != xxh64(data, seed ^ 0xDEADBEEF) or len(data) == 0
