"""Tests for the CTPH rolling hash."""

from repro.hashing.rolling import ROLLING_WINDOW, RollingHash, roll_sequence


class TestRollingHash:
    def test_initial_value_zero(self):
        assert RollingHash().value == 0

    def test_update_returns_value(self):
        roller = RollingHash()
        assert roller.update(65) == roller.value

    def test_deterministic(self):
        data = b"the quick brown fox jumps over the lazy dog"
        assert roll_sequence(data) == roll_sequence(data)

    def test_locality_window(self):
        """The hash after position i depends only on the last 7 bytes."""
        prefix_a = b"A" * 50
        prefix_b = b"B" * 50
        tail = b"0123456789ABCDEF"
        seq_a = roll_sequence(prefix_a + tail)
        seq_b = roll_sequence(prefix_b + tail)
        # After consuming ROLLING_WINDOW bytes of the identical tail, the
        # values must coincide regardless of the differing prefixes.
        offset = 50 + ROLLING_WINDOW - 1
        assert seq_a[offset + 1:] == seq_b[offset + 1:]

    def test_differs_for_different_last_byte(self):
        assert roll_sequence(b"abcdefg")[-1] != roll_sequence(b"abcdefh")[-1]

    def test_reset_restores_initial_state(self):
        roller = RollingHash()
        for byte in b"some data":
            roller.update(byte)
        roller.reset()
        assert roller.value == 0
        assert roller.count == 0

    def test_count_tracks_bytes(self):
        roller = RollingHash()
        for byte in b"12345":
            roller.update(byte)
        assert roller.count == 5

    def test_values_are_32_bit(self):
        assert all(0 <= value < 2 ** 32 for value in roll_sequence(bytes(range(256)) * 4))
