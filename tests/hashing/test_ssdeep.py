"""Tests for the CTPH (ssdeep) fuzzy hashing and comparison."""

import pytest

from repro.hashing.ssdeep import (
    MIN_BLOCKSIZE,
    SPAMSUM_LENGTH,
    FuzzyHash,
    FuzzyHasher,
    _eliminate_sequences,
    compare,
    fuzzy_hash,
    fuzzy_hash_text,
)
from repro.util.rng import SeededRNG


def _random_bytes(size: int, seed: int = 0) -> bytes:
    return SeededRNG(seed).bytes(size)


class TestFuzzyHashParsing:
    def test_roundtrip(self):
        digest = FuzzyHash(block_size=96, sig1="abc", sig2="de")
        assert FuzzyHash.parse(str(digest)) == digest

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FuzzyHash.parse("not a hash")

    def test_parse_rejects_bad_blocksize(self):
        with pytest.raises(ValueError):
            FuzzyHash.parse("zero:abc:def")
        with pytest.raises(ValueError):
            FuzzyHash.parse("0:abc:def")

    def test_format(self):
        assert str(FuzzyHash(3, "AB", "C")) == "3:AB:C"


class TestHashing:
    def test_digest_format(self):
        digest = fuzzy_hash(_random_bytes(5000))
        block, sig1, sig2 = digest.split(":")
        assert int(block) >= MIN_BLOCKSIZE
        assert 1 <= len(sig1) <= SPAMSUM_LENGTH
        assert 1 <= len(sig2) <= SPAMSUM_LENGTH // 2 + 1

    def test_deterministic(self):
        data = _random_bytes(4096, seed=3)
        assert fuzzy_hash(data) == fuzzy_hash(data)

    def test_block_size_grows_with_input(self):
        small = FuzzyHash.parse(fuzzy_hash(_random_bytes(500)))
        large = FuzzyHash.parse(fuzzy_hash(_random_bytes(200_000)))
        assert large.block_size > small.block_size

    def test_block_size_compatible_relation(self):
        hasher = FuzzyHasher()
        assert hasher.initial_block_size(0) == MIN_BLOCKSIZE
        assert hasher.initial_block_size(MIN_BLOCKSIZE * SPAMSUM_LENGTH + 1) == MIN_BLOCKSIZE * 2

    def test_empty_input(self):
        digest = FuzzyHash.parse(fuzzy_hash(b""))
        assert digest.block_size == MIN_BLOCKSIZE
        assert digest.sig1 == "" and digest.sig2 == ""

    def test_text_hashing_is_utf8(self):
        assert fuzzy_hash_text("modules:a:b") == fuzzy_hash("modules:a:b".encode("utf-8"))

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            FuzzyHasher().hash("a string")  # type: ignore[arg-type]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            FuzzyHasher(min_block_size=0)
        with pytest.raises(ValueError):
            FuzzyHasher(signature_length=4)


class TestComparison:
    def test_identical_inputs_score_100(self):
        data = _random_bytes(8192, seed=5)
        assert compare(fuzzy_hash(data), fuzzy_hash(data)) == 100

    def test_unrelated_inputs_score_0(self):
        a = fuzzy_hash(_random_bytes(8192, seed=5))
        b = fuzzy_hash(_random_bytes(8192, seed=6))
        assert compare(a, b) == 0

    def test_small_edit_scores_high(self):
        data = bytearray(_random_bytes(16384, seed=7))
        mutated = bytearray(data)
        for index in range(0, len(mutated), 2048):
            mutated[index] ^= 0xFF
        score = compare(fuzzy_hash(bytes(data)), fuzzy_hash(bytes(mutated)))
        assert 60 <= score < 100

    def test_more_edits_lower_score(self):
        data = bytearray(_random_bytes(16384, seed=8))
        light = bytearray(data)
        heavy = bytearray(data)
        for index in range(0, len(data), 4096):
            light[index] ^= 0xFF
        for index in range(0, len(data), 256):
            heavy[index] ^= 0xFF
        base = fuzzy_hash(bytes(data))
        assert compare(base, fuzzy_hash(bytes(light))) >= compare(base, fuzzy_hash(bytes(heavy)))

    def test_prefix_insertion_still_matches(self):
        data = _random_bytes(12000, seed=9)
        shifted = _random_bytes(200, seed=10) + data
        assert compare(fuzzy_hash(data), fuzzy_hash(shifted)) > 50

    def test_incompatible_block_sizes_score_0(self):
        small = fuzzy_hash(_random_bytes(1000, seed=11))
        huge = fuzzy_hash(_random_bytes(400_000, seed=11))
        assert compare(small, huge) == 0

    def test_symmetry(self):
        a = fuzzy_hash(_random_bytes(9000, seed=12))
        b = fuzzy_hash(_random_bytes(9000, seed=13))
        assert compare(a, b) == compare(b, a)

    def test_score_range(self):
        a = fuzzy_hash(_random_bytes(5000, seed=14))
        b = fuzzy_hash(_random_bytes(5000, seed=15))
        assert 0 <= compare(a, b) <= 100

    def test_accepts_strings_and_objects(self):
        data = _random_bytes(4000, seed=16)
        digest = fuzzy_hash(data)
        parsed = FuzzyHash.parse(digest)
        assert compare(digest, parsed) == 100

    def test_double_blocksize_comparison(self):
        """Hashes whose block sizes differ by exactly 2x are still comparable."""
        hasher = FuzzyHasher()
        data = _random_bytes(3 * 64 * 128, seed=17)  # exercises a larger block size
        base = hasher.hash(data)
        extended = hasher.hash(data + _random_bytes(len(data), seed=18))
        if base.block_size != extended.block_size:
            assert extended.block_size in (base.block_size * 2, base.block_size // 2)
            assert hasher.compare(base, extended) >= 0


class TestCachedCompare:
    def test_cached_compare_matches_compare(self):
        hasher = FuzzyHasher()
        a = hasher.hash(_random_bytes(4096, seed=1))
        b = hasher.hash(_random_bytes(4096, seed=2))
        assert hasher.compare_cached(a, b) == hasher.compare(a, b)
        assert hasher.compare_cached(str(a), str(b)) == hasher.compare(a, b)

    def test_cache_hits_on_repeat_and_swapped_pairs(self):
        hasher = FuzzyHasher()
        a = str(hasher.hash(_random_bytes(4096, seed=3)))
        b = str(hasher.hash(_random_bytes(4096, seed=4)))
        first = hasher.compare_cached(a, b)
        info_after_first = hasher.compare_cache_info()
        # The pair key is order-normalised, so the swapped call hits too.
        assert hasher.compare_cached(b, a) == first
        assert hasher.compare_cached(a, b) == first
        info = hasher.compare_cache_info()
        assert info.hits == info_after_first.hits + 2
        assert info.misses == info_after_first.misses

    def test_caches_are_per_hasher_instance(self):
        first = FuzzyHasher()
        second = FuzzyHasher()
        a = str(first.hash(_random_bytes(2048, seed=5)))
        first.compare_cached(a, a)
        assert second.compare_cache_info().currsize == 0


class TestEliminateSequences:
    def test_collapses_long_runs(self):
        assert _eliminate_sequences("aaaaaabc") == "aaabc"

    def test_short_runs_untouched(self):
        assert _eliminate_sequences("aaabbbccc") == "aaabbbccc"

    def test_short_string_untouched(self):
        assert _eliminate_sequences("ab") == "ab"


class TestTextSimilarityUseCases:
    """The collector hashes module/library lists; check that behaves sensibly."""

    def test_similar_library_lists_score_high(self):
        base = "\n".join(f"/opt/cray/pe/lib64/lib{name}.so" for name in
                         ["sci_cray", "mpi_cray", "pmi", "fabric", "quadmath", "pthread",
                          "hdf5", "netcdf", "gfortran", "m", "c", "dl", "rt", "z"])
        variant = base.replace("hdf5", "hdf5_parallel")
        assert compare(fuzzy_hash_text(base), fuzzy_hash_text(variant)) > 40

    def test_disjoint_library_lists_score_low(self):
        a = "\n".join(f"/lib64/liba{i}.so" for i in range(20))
        b = "\n".join(f"/opt/rocm/librocm{i * 7}.so" for i in range(20))
        assert compare(fuzzy_hash_text(a), fuzzy_hash_text(b)) < 30
