"""Tests for the edit distances used in fuzzy-hash comparison."""

import pytest

from repro.hashing.edit_distance import (
    damerau_levenshtein,
    has_common_substring,
    levenshtein,
    weighted_edit_distance,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("abc", "abd", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")


class TestDamerauLevenshtein:
    def test_transposition_counts_one(self):
        assert damerau_levenshtein("ab", "ba") == 1
        assert levenshtein("ab", "ba") == 2

    def test_ca_abc(self):
        # Classic OSA example: restricted Damerau distance is 3.
        assert damerau_levenshtein("ca", "abc") == 3

    def test_equal_strings(self):
        assert damerau_levenshtein("same", "same") == 0


class TestWeightedEditDistance:
    def test_default_substitution_costs_two(self):
        assert weighted_edit_distance("abc", "abd") == 2

    def test_substitution_never_worse_than_indel_pair(self):
        # With substitute=2 == insert+delete, distance equals 2 either way.
        assert weighted_edit_distance("a", "b") == 2

    def test_custom_costs(self):
        assert weighted_edit_distance("abc", "abd", substitute_cost=5,
                                      insert_cost=1, delete_cost=1) == 2  # delete+insert wins

    def test_transpose_disabled(self):
        assert weighted_edit_distance("ab", "ba", transpose_cost=None,
                                      substitute_cost=1) == 2

    def test_empty_inputs(self):
        assert weighted_edit_distance("", "xyz") == 3
        assert weighted_edit_distance("xyz", "", delete_cost=4) == 12

    def test_triangle_inequality_sample(self):
        a, b, c = "sirensoftware", "sirensw", "software"
        assert weighted_edit_distance(a, c) <= \
            weighted_edit_distance(a, b) + weighted_edit_distance(b, c)


class TestHasCommonSubstring:
    def test_short_strings_never_match(self):
        assert not has_common_substring("abc", "abc", length=7)

    def test_shared_7_gram(self):
        assert has_common_substring("xxABCDEFGxx", "yyABCDEFGyy", length=7)

    def test_no_shared_7_gram(self):
        assert not has_common_substring("abcdefghijk", "zyxwvutsrqp", length=7)

    def test_identical_long_strings(self):
        text = "A" * 3 + "BCDEFGH" + "I" * 3
        assert has_common_substring(text, text, length=7)
