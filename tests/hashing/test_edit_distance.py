"""Tests for the edit distances used in fuzzy-hash comparison."""

import pytest

from repro.hashing.edit_distance import (
    damerau_levenshtein,
    has_common_substring,
    levenshtein,
    weighted_edit_distance,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("abc", "abd", 1),
        ],
    )
    def test_known_distances(self, a, b, expected):
        assert levenshtein(a, b) == expected

    def test_symmetry(self):
        assert levenshtein("abcdef", "azced") == levenshtein("azced", "abcdef")


class TestDamerauLevenshtein:
    def test_transposition_counts_one(self):
        assert damerau_levenshtein("ab", "ba") == 1
        assert levenshtein("ab", "ba") == 2

    def test_ca_abc(self):
        # Classic OSA example: restricted Damerau distance is 3.
        assert damerau_levenshtein("ca", "abc") == 3

    def test_equal_strings(self):
        assert damerau_levenshtein("same", "same") == 0


class TestWeightedEditDistance:
    def test_default_substitution_costs_two(self):
        assert weighted_edit_distance("abc", "abd") == 2

    def test_substitution_never_worse_than_indel_pair(self):
        # With substitute=2 == insert+delete, distance equals 2 either way.
        assert weighted_edit_distance("a", "b") == 2

    def test_custom_costs(self):
        assert weighted_edit_distance("abc", "abd", substitute_cost=5,
                                      insert_cost=1, delete_cost=1) == 2  # delete+insert wins

    def test_transpose_disabled(self):
        assert weighted_edit_distance("ab", "ba", transpose_cost=None,
                                      substitute_cost=1) == 2

    def test_empty_inputs(self):
        assert weighted_edit_distance("", "xyz") == 3
        assert weighted_edit_distance("xyz", "", delete_cost=4) == 12

    def test_triangle_inequality_sample(self):
        a, b, c = "sirensoftware", "sirensw", "software"
        assert weighted_edit_distance(a, c) <= \
            weighted_edit_distance(a, b) + weighted_edit_distance(b, c)


class TestEarlyExitBound:
    def test_exact_when_within_bound(self):
        assert weighted_edit_distance("kitten", "sitting", bound=100) == \
            weighted_edit_distance("kitten", "sitting")

    def test_exceeding_bound_returns_value_above_bound(self):
        a, b = "aaaaaaaaaa", "zzzzzzzzzz"
        exact = weighted_edit_distance(a, b)
        bounded = weighted_edit_distance(a, b, bound=3)
        assert bounded > 3
        assert bounded <= exact  # a lower bound on the true distance

    def test_bound_equal_to_distance_is_exact(self):
        a, b = "abcdef", "abcxef"
        exact = weighted_edit_distance(a, b)
        assert weighted_edit_distance(a, b, bound=exact) == exact

    def test_threshold_decisions_match_unbounded(self):
        """The fuzzy scorer only asks "is the distance >= len(a)+len(b)?";
        that answer must be identical with and without the bound."""
        import random

        alphabet = "ABCDab01+/"
        rng = random.Random(99)
        for _ in range(200):
            a = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 20)))
            b = "".join(rng.choice(alphabet) for _ in range(rng.randint(0, 20)))
            if not a or not b:
                continue
            bound = len(a) + len(b) - 1
            exact = weighted_edit_distance(a, b)
            bounded = weighted_edit_distance(a, b, bound=bound)
            assert (exact > bound) == (bounded > bound)
            if exact <= bound:
                assert bounded == exact

    def test_bound_with_transpositions_stays_safe(self):
        # Transpositions skip one DP row; the exit must consider both recent
        # rows or it could cut off a cheap transposition path.
        a, b = "ab" * 10, "ba" * 10
        exact = weighted_edit_distance(a, b)
        for bound in range(0, exact + 5):
            bounded = weighted_edit_distance(a, b, bound=bound)
            assert (exact > bound) == (bounded > bound)
            if exact <= bound:
                assert bounded == exact

    def test_bound_zero(self):
        # bound=0 only admits distance 0, i.e. equal strings; everything else
        # must come back strictly positive (and equal strings exactly 0).
        assert weighted_edit_distance("same", "same", bound=0) == 0
        assert weighted_edit_distance("", "", bound=0) == 0
        for a, b in (("a", "b"), ("ab", "ba"), ("abc", "abcd"), ("x", "")):
            assert weighted_edit_distance(a, b, bound=0) > 0

    def test_transposition_exactly_at_the_early_exit_boundary(self):
        # One adjacent swap costs 2: with bound=2 the exit must not fire
        # before the transposition lookback (prev2) has had its say, and the
        # result must be exact; with bound=1 the true distance exceeds the
        # bound and the return value must reflect that.
        for prefix in ("", "xx", "xyxy"):
            a = prefix + "ab"
            b = prefix + "ba"
            assert weighted_edit_distance(a, b) == 2
            assert weighted_edit_distance(a, b, bound=2) == 2
            assert weighted_edit_distance(a, b, bound=1) > 1

    def test_bounded_equals_unbounded_whenever_distance_fits(self):
        # The contract: distances up to the bound are exact, for every bound
        # at or above the true distance -- swept over random string pairs.
        import random

        rng = random.Random(123)
        alphabet = "ABab01+/"
        for _ in range(150):
            a = "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 12)))
            b = "".join(rng.choice(alphabet) for _ in range(rng.randint(1, 12)))
            exact = weighted_edit_distance(a, b)
            for bound in (exact, exact + 1, exact + 7, 10 ** 6):
                assert weighted_edit_distance(a, b, bound=bound) == exact


class TestHasCommonSubstring:
    def test_short_strings_never_match(self):
        assert not has_common_substring("abc", "abc", length=7)

    def test_shared_7_gram(self):
        assert has_common_substring("xxABCDEFGxx", "yyABCDEFGyy", length=7)

    def test_no_shared_7_gram(self):
        assert not has_common_substring("abcdefghijk", "zyxwvutsrqp", length=7)

    def test_identical_long_strings(self):
        text = "A" * 3 + "BCDEFGH" + "I" * 3
        assert has_common_substring(text, text, length=7)
