"""Tests for the xxHash implementations (spec test vectors included)."""

import pytest

from repro.hashing.xxhash import xxh32, xxh64, xxh64_hex, xxh128_hex


class TestXXH32Vectors:
    @pytest.mark.parametrize(
        "data, seed, expected",
        [
            (b"", 0, 0x02CC5D05),
            (b"", 1, 0x0B2CB792),
            (b"abc", 0, 0x32D153FF),
            (b"Nobody inspects the spammish repetition", 0, 0xE2293B2F),
        ],
    )
    def test_reference_vectors(self, data, seed, expected):
        assert xxh32(data, seed) == expected


class TestXXH64Vectors:
    @pytest.mark.parametrize(
        "data, seed, expected",
        [
            (b"", 0, 0xEF46DB3751D8E999),
            (b"abc", 0, 0x44BC2CF5AD770999),
            (b"Nobody inspects the spammish repetition", 0, 0xFBCEA83C8A378BF1),
        ],
    )
    def test_reference_vectors(self, data, seed, expected):
        assert xxh64(data, seed) == expected

    def test_seed_changes_result(self):
        assert xxh64(b"payload", 0) != xxh64(b"payload", 1)

    def test_long_input_all_paths(self):
        """Inputs >= 32 bytes exercise the accumulator loop plus every tail branch."""
        base = bytes(range(256))
        digests = {xxh64(base[:length]) for length in (32, 33, 36, 40, 41, 63, 64, 200)}
        assert len(digests) == 8

    def test_hex_digest_width(self):
        assert len(xxh64_hex(b"x")) == 16


class TestXXH128Composite:
    def test_width_and_hex(self):
        digest = xxh128_hex("/usr/bin/bash")
        assert len(digest) == 32
        int(digest, 16)  # parses as hex

    def test_accepts_str_and_bytes(self):
        assert xxh128_hex("/usr/bin/bash") == xxh128_hex(b"/usr/bin/bash")

    def test_distinguishes_paths(self):
        assert xxh128_hex("/usr/bin/bash") != xxh128_hex("/usr/bin/dash")

    def test_seed_sensitivity(self):
        assert xxh128_hex("/usr/bin/bash", seed=1) != xxh128_hex("/usr/bin/bash", seed=2)
