"""Tests for the SirenFramework facade and the AnalysisPipeline."""

import pytest

from repro.core import AnalysisPipeline, SirenConfig, SirenFramework
from repro.hpcsim.slurm import JobScript, ProcessSpec, StepSpec
from repro.util.errors import CollectionError


class TestSirenFramework:
    def test_deploy_and_collect(self, app_cluster):
        cluster, manifest = app_cluster
        framework = SirenFramework(SirenConfig(loss_rate=0.0))
        collector = framework.deploy(cluster, siren_library_path=manifest.siren_library)
        try:
            icon = manifest.find_executable("icon", "cray-r1", "alice")
            script = JobScript(name="t", modules=("siren", *icon.required_modules),
                               steps=(StepSpec(processes=(
                                   ProcessSpec(executable=icon.path),
                                   ProcessSpec(executable=manifest.tool("bash")),)),))
            cluster.run_job("alice", script)
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)
        records = framework.consolidate()
        assert len(records) == 2
        stats = framework.statistics()
        assert stats["processes_collected"] == 2
        assert stats["messages_received"] > 0
        assert collector.section_errors == 0

    def test_hashing_knobs_reach_collector(self, app_cluster):
        cluster, manifest = app_cluster
        config = SirenConfig(hash_engine=False, hash_content_cache=False,
                             hash_concurrency=2)
        framework = SirenFramework(config)
        collector = framework.deploy(cluster, siren_library_path=manifest.siren_library)
        try:
            assert collector.hash_engine is False
            assert collector.hasher.hasher.use_engine is False
            assert collector.hasher.content_cache_enabled is False
            assert collector.hasher.hash_concurrency == 2
            framework.close()  # releases hash workers even when none were spawned
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)

    def test_double_deploy_rejected(self, app_cluster):
        cluster, manifest = app_cluster
        framework = SirenFramework(SirenConfig(loss_rate=0.0))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        try:
            with pytest.raises(CollectionError):
                framework.deploy(cluster, siren_library_path=manifest.siren_library)
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)

    def test_lossy_channel_statistics(self, app_cluster):
        cluster, manifest = app_cluster
        framework = SirenFramework(SirenConfig(loss_rate=0.5, rng_seed=1))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        try:
            script = JobScript(name="t", modules=("siren",), steps=(StepSpec(processes=(
                ProcessSpec(executable=manifest.tool("bash"), count=20),)),))
            cluster.run_job("alice", script)
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)
        stats = framework.statistics()
        assert stats["datagrams_dropped"] > 0
        assert 0.3 < stats["observed_loss_rate"] < 0.7


class TestStreamingFramework:
    def _run_job(self, cluster, manifest) -> None:
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        script = JobScript(name="t", modules=("siren", *icon.required_modules),
                           steps=(StepSpec(processes=(
                               ProcessSpec(executable=icon.path),
                               ProcessSpec(executable=manifest.tool("bash")),)),))
        cluster.run_job("alice", script)

    def test_streaming_consolidate_matches_batch(self, app_cluster):
        cluster, manifest = app_cluster
        results = {}
        for mode in ("batch", "streaming"):
            framework = SirenFramework(SirenConfig(loss_rate=0.0, ingest_mode=mode,
                                                   ingest_shards=2))
            framework.deploy(cluster, siren_library_path=manifest.siren_library)
            try:
                self._run_job(cluster, manifest)
            finally:
                cluster.runtime.unregister_hook(manifest.siren_library)
            results[mode] = sorted(
                (r.executable, r.category, r.file_h, r.objects, r.incomplete)
                for r in framework.consolidate())
        assert results["streaming"] == results["batch"]

    def test_streaming_snapshot_and_statistics(self, app_cluster):
        cluster, manifest = app_cluster
        framework = SirenFramework(SirenConfig(loss_rate=0.0, ingest_mode="streaming"))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        try:
            self._run_job(cluster, manifest)
            snapshot = framework.snapshot()
            assert len(snapshot) == 2
            # Snapshots are non-destructive: collection continues afterwards.
            self._run_job(cluster, manifest)
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)
        assert len(framework.consolidate()) == 4
        stats = framework.statistics()
        assert stats["messages_received"] > 0
        assert stats["decode_errors"] == 0
        assert stats["ingest_records_built"] >= 2
        assert stats["ingest_peak_open_processes"] >= 1

    def test_streaming_consolidate_persists_partial_batches(self, app_cluster):
        """consolidate() must flush pending records to the processes table
        even when fewer than flush_batch_size have been finalized."""
        cluster, manifest = app_cluster
        framework = SirenFramework(SirenConfig(loss_rate=0.0, ingest_mode="streaming"))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        try:
            self._run_job(cluster, manifest)
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)
        records = framework.consolidate()
        assert framework.store.process_count() == len(records) == 2

    @pytest.mark.parametrize("keep_raw", [True, False])
    def test_raw_message_persistence_parity_with_batch(self, app_cluster, keep_raw):
        """Streaming and batch deployments honour ``keep_raw_messages``
        identically: the same traffic leaves the same raw-message table.

        Regression test: streaming mode used to construct its ingest front
        without ``persist_raw``, silently never persisting raw messages no
        matter what the configuration asked for.
        """
        cluster, manifest = app_cluster
        message_counts = {}
        for mode in ("batch", "streaming"):
            framework = SirenFramework(SirenConfig(
                loss_rate=0.0, ingest_mode=mode, keep_raw_messages=keep_raw))
            framework.deploy(cluster, siren_library_path=manifest.siren_library)
            try:
                self._run_job(cluster, manifest)
            finally:
                cluster.runtime.unregister_hook(manifest.siren_library)
            assert len(framework.finalize()) == 2
            message_counts[mode] = framework.store.message_count()
        assert message_counts["streaming"] == message_counts["batch"]
        assert (message_counts["streaming"] > 0) is keep_raw

    def test_finalize_persists_groups_whose_procend_was_lost(self):
        from repro.collector.records import InfoType, Layer
        from repro.transport.messages import UDPMessage

        framework = SirenFramework(SirenConfig(loss_rate=0.0, ingest_mode="streaming"))
        framework.sender.send(UDPMessage(
            jobid="9", stepid="0", pid=1, path_hash="a" * 32, host="n1", time=5,
            layer=Layer.SELF, info_type=InfoType.PROCINFO,
            content="pid=1|exe=/usr/bin/x|category="))
        # No PROCEND ever arrives: the group stays open, visible to
        # snapshots but not yet persisted.
        assert len(framework.snapshot()) == 1
        assert framework.store.process_count() == 0
        records = framework.finalize()
        assert len(records) == 1
        assert framework.store.process_count() == 1

    def test_invalid_ingest_mode_rejected(self):
        with pytest.raises(CollectionError):
            SirenFramework(SirenConfig(ingest_mode="sideways"))

    def test_invalid_transport_rejected(self):
        with pytest.raises(CollectionError):
            SirenFramework(SirenConfig(transport="carrier-pigeon"))

    def test_socket_transport_end_to_end(self, app_cluster):
        """Framework deployments over real loopback UDP match the memory channel.

        Regression test: ``SirenConfig`` had no ``transport`` knob at all --
        only campaigns could exercise the socket path.
        """
        cluster, manifest = app_cluster
        results = {}
        for transport in ("memory", "socket"):
            framework = SirenFramework(SirenConfig(
                loss_rate=0.0, ingest_mode="streaming", ingest_shards=2,
                transport=transport, keep_raw_messages=False))
            framework.deploy(cluster, siren_library_path=manifest.siren_library)
            try:
                self._run_job(cluster, manifest)
            finally:
                cluster.runtime.unregister_hook(manifest.siren_library)
            try:
                results[transport] = sorted(
                    (r.executable, r.category, r.file_h, r.objects, r.incomplete)
                    for r in framework.finalize())
                stats = framework.statistics()
                assert stats["decode_errors"] == 0
            finally:
                framework.close()  # drains and releases the loopback sockets
            # close() is idempotent, and late observers (snapshot, live
            # analysis views) keep working on the already-drained data
            # instead of crashing on the dead socket.
            framework.close()
            assert len(framework.snapshot()) == 2
        assert results["socket"] == results["memory"]
        assert len(results["socket"]) == 2


class TestFrameworkLiveAnalysis:
    def test_live_analysis_requires_streaming(self):
        framework = SirenFramework(SirenConfig(loss_rate=0.0))  # batch
        with pytest.raises(CollectionError):
            framework.live_analysis()
        with pytest.raises(CollectionError):
            framework.snapshot_delta()

    def test_live_analysis_tracks_the_stream(self, app_cluster):
        cluster, manifest = app_cluster
        framework = SirenFramework(SirenConfig(loss_rate=0.0, ingest_mode="streaming"))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        live = framework.live_analysis()
        try:
            icon = manifest.find_executable("icon", "cray-r1", "alice")
            script = JobScript(name="t", modules=("siren", *icon.required_modules),
                               steps=(StepSpec(processes=(
                                   ProcessSpec(executable=icon.path),
                                   ProcessSpec(executable=manifest.tool("bash")),)),))
            cluster.run_job("alice", script)
            first = live.table2_totals()
            assert first.total_processes == 2
            cluster.run_job("alice", script)
            second = live.table2_totals()
            assert second.total_processes == 4
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)
        # Each view pulled only the delta, never the whole record set again.
        assert live.statistics()["records_committed"] == 4

    def test_snapshot_delta_is_disjoint_and_complete(self, app_cluster):
        cluster, manifest = app_cluster
        framework = SirenFramework(SirenConfig(loss_rate=0.0, ingest_mode="streaming"))
        framework.deploy(cluster, siren_library_path=manifest.siren_library)
        try:
            icon = manifest.find_executable("icon", "cray-r1", "alice")
            script = JobScript(name="t", modules=("siren", *icon.required_modules),
                               steps=(StepSpec(processes=(
                                   ProcessSpec(executable=icon.path),)),))
            cluster.run_job("alice", script)
            first = framework.snapshot_delta()
            cluster.run_job("alice", script)
            second = framework.snapshot_delta(first.cursor)
        finally:
            cluster.runtime.unregister_hook(manifest.siren_library)
        keys = lambda records: {(r.jobid, r.stepid, r.pid, r.hash, r.host, r.time)
                                for r in records}
        assert len(first.new_records) == len(second.new_records) == 1
        assert keys(first.new_records).isdisjoint(keys(second.new_records))
        assert second.cursor > first.cursor
        assert keys(first.new_records) | keys(second.new_records) == \
            keys(framework.snapshot())


class TestFrameworkAnalysisFacade:
    def _run_identification_job(self, cluster, manifest) -> None:
        icon = manifest.find_executable("icon", "cray-r1", "alice")
        unknown = manifest.find_executable("icon", "unknown-copy", "alice")
        script = JobScript(name="t", modules=("siren", *icon.required_modules),
                           steps=(StepSpec(processes=(
                               ProcessSpec(executable=icon.path),
                               ProcessSpec(executable=unknown.path),)),))
        cluster.run_job("alice", script)

    def test_analysis_pipeline_over_collected_records(self, deployed_framework):
        cluster, manifest, framework, _ = deployed_framework
        self._run_identification_job(cluster, manifest)
        pipeline = framework.analysis_pipeline()
        labels = {row.label for row in pipeline.table5_user_applications()}
        assert {"icon", "UNKNOWN"} <= labels

    def test_identify_unknown_indexed_knob(self, deployed_framework):
        cluster, manifest, framework, _ = deployed_framework
        self._run_identification_job(cluster, manifest)
        indexed = framework.identify_unknown(top=5, indexed=True)
        brute = framework.identify_unknown(top=5, indexed=False)
        assert indexed == brute
        (results,) = indexed.values()
        assert results[0].label == "icon"
        assert results[0].average == 100.0


class TestAnalysisPipeline:
    def test_tables_present_and_consistent(self, pipeline, campaign_result):
        table2 = pipeline.table2_user_activity()
        assert {row.user for row in table2} >= {"user_1", "user_4", "user_8"}
        totals = pipeline.table2_totals()
        assert totals.job_count == sum(row.job_count for row in table2)

        table3 = pipeline.table3_system_executables(top=10)
        assert len(table3) == 10
        assert all(row.process_count >= 1 for row in table3)

        table5 = pipeline.table5_user_applications()
        labels = {row.label for row in table5}
        assert {"LAMMPS", "GROMACS", "icon", "UNKNOWN"} <= labels

        table6 = pipeline.table6_compilers()
        assert any("GCC [SUSE]" in row.compilers for row in table6)

        table8 = pipeline.table8_python_interpreters()
        assert {row.interpreter for row in table8} == {"python3.6", "python3.10", "python3.11"}

    def test_figures_present(self, pipeline):
        figure2 = pipeline.figure2_library_usage()
        assert {row.tag for row in figure2} >= {"siren", "pthread", "cray"}
        figure3 = pipeline.figure3_python_packages()
        assert {row.package for row in figure3} >= {"heapq", "struct", "numpy"}
        figure4 = pipeline.figure4_compiler_matrix()
        assert "icon" in figure4.row_labels
        figure5 = pipeline.figure5_library_matrix()
        assert figure5.value("icon", "climatedt") == 1

    def test_table7_identifies_unknown_as_icon(self, pipeline):
        searches = pipeline.table7_similarity_search(top=5)
        assert searches
        for results in searches.values():
            assert results[0].label == "icon"

    def test_render_all_contains_every_section(self, pipeline):
        rendered = pipeline.render_all()
        for section in ("Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7",
                        "Table 8", "Figure 2", "Figure 3", "Figure 4", "Figure 5"):
            assert section in rendered

    def test_render_all_skips_table7_without_unknowns(self, pipeline):
        known = [record for record in pipeline.records
                 if not record.executable.endswith(("a.out", "model.x"))]
        rendered = AnalysisPipeline(known, pipeline.user_names).render_all()
        assert "Table 7" not in rendered
        assert "Table 5" in rendered

    def test_render_all_propagates_unexpected_errors(self, pipeline, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("broken similarity backend")

        patched = AnalysisPipeline(pipeline.records, pipeline.user_names)
        monkeypatch.setattr(patched, "table7_similarity_search", boom)
        with pytest.raises(RuntimeError):
            patched.render_all()

    def test_similarity_search_accessor(self, pipeline):
        search = pipeline.similarity_search()
        assert search.unknown_instances()
        indexed = pipeline.similarity_search(indexed=True)
        assert indexed.index_stats() is None or indexed.indexed
